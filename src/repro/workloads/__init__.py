"""Structured workload scenarios on top of ``repro.traffic``.

The scenario layer ROADMAP item 4 calls for: deterministic, seeded
flow-program generators for the workload families the multipath
literature evaluates, runnable on every registered engine through
``repro.api``.

>>> from repro.workloads import get_scenario, run_scenario
>>> scenario = get_scenario("allreduce", n_workers=4)
>>> result = run_scenario(scenario, pnet, engine="fluid", seed=7)
>>> result.completion_times
{'ring': ...}
"""

from repro.workloads.base import (
    Chain,
    Scenario,
    ScenarioProgram,
    WaveLauncher,
    WorkloadError,
    bind,
    chain_stats,
    parse_tag,
    record_finish,
    record_start,
    wave_tag,
)
from repro.workloads.coflow import CoflowScenario, split_exact
from repro.workloads.collective import (
    ALGORITHMS,
    AllReduceScenario,
    ring_waves,
    tree_waves,
)
from repro.workloads.diurnal import DiurnalScenario
from repro.workloads.driver import (
    ScenarioResult,
    SteadyStateReport,
    default_policy,
    run_scenario,
    steady_state,
)
from repro.workloads.incast import IncastScenario

#: Scenario registry: ``--scenario`` name -> class.
SCENARIOS = {
    IncastScenario.name: IncastScenario,
    CoflowScenario.name: CoflowScenario,
    AllReduceScenario.name: AllReduceScenario,
    DiurnalScenario.name: DiurnalScenario,
}


def get_scenario(name: str, **knobs) -> Scenario:
    """Instantiate a registered scenario by name."""
    try:
        cls = SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r} (one of {sorted(SCENARIOS)})"
        ) from None
    return cls(**knobs)


__all__ = [
    "ALGORITHMS",
    "AllReduceScenario",
    "Chain",
    "CoflowScenario",
    "DiurnalScenario",
    "IncastScenario",
    "SCENARIOS",
    "Scenario",
    "ScenarioProgram",
    "ScenarioResult",
    "SteadyStateReport",
    "WaveLauncher",
    "WorkloadError",
    "bind",
    "chain_stats",
    "default_policy",
    "get_scenario",
    "parse_tag",
    "record_finish",
    "record_start",
    "ring_waves",
    "run_scenario",
    "split_exact",
    "steady_state",
    "tree_waves",
    "wave_tag",
]
