"""Coflow mixes: staggered shuffle jobs with per-coflow completion time.

A *coflow* is the shuffle literature's unit of work: the set of flows a
distributed computation must complete before it can proceed.  Each
coflow here is a three-stage sort in miniature (the structure of
``repro.traffic.shuffle`` and the paper's section 5.2.2 workload):

1. **read** -- every mapper pulls its input share from a random remote
   host;
2. **shuffle** -- each mapper's share is partitioned across all
   reducers (the all-to-all bucket exchange);
3. **write** -- every reducer pushes the bytes it received to a random
   remote replica.

Stages are dependency-ordered waves of one :class:`Chain` per coflow,
so the chain's completion time **is** the coflow completion time (CCT).
Every stage moves **exactly** ``total_bytes``: shares are split with
:func:`split_exact`, so byte conservation across stages holds to the
byte (a property test pins this, not just approximately).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.flowspec import FlowSpec
from repro.units import MB
from repro.workloads.base import (
    Chain,
    Scenario,
    ScenarioProgram,
    WorkloadError,
    wave_tag,
)

#: Stage names, in dependency order (wave index == position here).
STAGES = ("read", "shuffle", "write")


def split_exact(total: int, n: int) -> List[int]:
    """``n`` near-equal non-negative parts summing to exactly ``total``."""
    if n < 1:
        raise WorkloadError(f"cannot split into {n} parts")
    base, rem = divmod(int(total), n)
    return [base + 1] * rem + [base] * (n - rem)


class CoflowScenario(Scenario):
    """A mix of staggered three-stage shuffle coflows.

    Args:
        n_coflows: how many independent coflows run.
        n_mappers / n_reducers: workers per coflow (placed disjointly
            within a coflow, sampled independently across coflows).
        total_bytes: bytes one coflow moves per stage.
        size_range: optional ``(lo, hi)``; each coflow's ``total_bytes``
            is instead drawn log-uniformly from this interval.
        mean_interarrival: mean of the exponential coflow arrival
            process (seconds); 0 starts every coflow at t=0.
    """

    name = "coflow"

    def __init__(
        self,
        n_coflows: int = 4,
        n_mappers: int = 4,
        n_reducers: int = 4,
        total_bytes: int = int(4 * MB),
        size_range: Optional[Tuple[int, int]] = None,
        mean_interarrival: float = 0.0,
    ):
        if n_coflows < 1:
            raise WorkloadError(f"n_coflows must be >= 1, got {n_coflows}")
        if n_mappers < 1 or n_reducers < 1:
            raise WorkloadError("need at least one mapper and one reducer")
        if total_bytes < 1:
            raise WorkloadError("total_bytes must be positive")
        if size_range is not None and not 0 < size_range[0] <= size_range[1]:
            raise WorkloadError(f"bad size_range {size_range}")
        if mean_interarrival < 0:
            raise WorkloadError("mean_interarrival must be >= 0")
        self.n_coflows = n_coflows
        self.n_mappers = n_mappers
        self.n_reducers = n_reducers
        self.total_bytes = total_bytes
        self.size_range = size_range
        self.mean_interarrival = mean_interarrival

    def _coflow_bytes(self, rng) -> int:
        if self.size_range is None:
            return self.total_bytes
        lo, hi = self.size_range
        if lo == hi:
            return int(lo)
        return int(round(math.exp(rng.uniform(math.log(lo), math.log(hi)))))

    def program(self, pnet, policy, seed: int = 0) -> ScenarioProgram:
        hosts = pnet.hosts
        n_workers = self.n_mappers + self.n_reducers
        if len(hosts) < n_workers + 1:
            raise WorkloadError(
                f"need {n_workers + 1} hosts to place {self.n_mappers} "
                f"mappers + {self.n_reducers} reducers with a remote "
                f"host left over, have {len(hosts)}"
            )
        place = self.stream(seed, "placement")
        sizes = self.stream(seed, "sizes")
        arrivals = self.stream(seed, "arrivals")
        chains: List[Chain] = []
        flow_idx = 0

        def spec(src, dst, size, tag):
            nonlocal flow_idx
            paths = policy.select(src, dst, flow_idx)
            if not paths:
                raise WorkloadError(f"{src}->{dst} unroutable")
            flow_idx += 1
            return FlowSpec(src=src, dst=dst, size=size, paths=paths, tag=tag)

        def remote(worker):
            other = place.choice(hosts)
            while other == worker:
                other = place.choice(hosts)
            return other

        start = 0.0
        for c in range(self.n_coflows):
            if self.mean_interarrival > 0 and c > 0:
                start += arrivals.expovariate(1 / self.mean_interarrival)
            label = f"cf{c}"
            workers = place.sample(hosts, n_workers)
            mappers = workers[: self.n_mappers]
            reducers = workers[self.n_mappers:]
            total = self._coflow_bytes(sizes)
            shares = split_exact(total, self.n_mappers)

            # Size-0 flows are skipped (tiny totals leave some workers
            # with an empty share); the stage sums are unchanged, so
            # byte conservation still holds exactly.
            read = [
                spec(remote(m), m, shares[i],
                     wave_tag(label, 0, f"m{i}"))
                for i, m in enumerate(mappers)
                if shares[i] > 0
            ]
            shuffle = []
            received = [0] * self.n_reducers
            for i, m in enumerate(mappers):
                buckets = split_exact(shares[i], self.n_reducers)
                for j, r in enumerate(reducers):
                    received[j] += buckets[j]
                    if buckets[j] > 0:
                        shuffle.append(spec(
                            m, r, buckets[j],
                            wave_tag(label, 1, f"m{i}-r{j}"),
                        ))
            write = [
                spec(r, remote(r), received[j],
                     wave_tag(label, 2, f"r{j}"))
                for j, r in enumerate(reducers)
                if received[j] > 0
            ]
            chains.append(Chain(
                label=label, waves=[read, shuffle, write], start_at=start
            ))
        return ScenarioProgram(
            scenario=self.name,
            chains=chains,
            meta={
                "n_coflows": self.n_coflows,
                "n_mappers": self.n_mappers,
                "n_reducers": self.n_reducers,
                "stages": list(STAGES),
            },
        )
