"""Run scenarios through the engine-agnostic facade.

:func:`run_scenario` is the one-call path from a :class:`Scenario` to a
finished trial on any registered engine; :func:`steady_state` layers
the open-loop steady-state methodology on top -- warm-up trimming and
batch-means confidence intervals (``repro.analysis.stats``) -- so
sustained-load results are reported with error bars instead of point
estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.stats import (
    MeanCI,
    Summary,
    batch_means_ci,
    mean_ci,
    summarize,
)
from repro.api import TrialResult, build_network, run_trial
from repro.core.path_selection import EcmpPolicy
from repro.workloads.base import (
    Scenario,
    ScenarioProgram,
    WorkloadError,
    bind,
    chain_stats,
    record_finish,
    record_start,
)


def default_policy(pnet, seed: int = 0):
    """The path policy scenarios use unless told otherwise."""
    return EcmpPolicy(pnet, salt=seed)


@dataclass
class ScenarioResult:
    """A scenario run: the generated program plus the finished trial."""

    scenario: str
    engine: str
    seed: int
    program: ScenarioProgram
    trial: TrialResult
    #: chain label -> start/finish/completion_time/flows/bytes.
    chains: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def records(self) -> List[Any]:
        return self.trial.records

    @property
    def fcts(self) -> List[float]:
        return [r.fct for r in self.trial.records]

    @property
    def completion_times(self) -> Dict[str, float]:
        """Chain label -> completion time (CCT / collective time)."""
        return {
            label: stats["completion_time"]
            for label, stats in self.chains.items()
        }

    @property
    def makespan(self) -> float:
        return max(stats["finish"] for stats in self.chains.values())

    def fct_summary(self) -> Summary:
        return summarize(self.fcts)


def run_scenario(
    scenario: Scenario,
    pnet,
    engine: str = "packet",
    policy=None,
    seed: int = 0,
    until: float = math.inf,
    promotion: Optional[Any] = None,
    obs=None,
    **engine_kwargs: Any,
) -> ScenarioResult:
    """Generate the scenario's program and run it on one engine.

    The program is materialised with :meth:`Scenario.program` (pure in
    the seed), bound to a fresh ``build_network(kind=engine)`` network,
    and executed through :func:`repro.api.run_trial` -- so promotion
    policies, checkpointing knobs, and telemetry behave exactly as they
    do for hand-built flow lists.

    Raises :class:`WorkloadError` if the run ends with unfinished
    chains (an ``until`` horizon that cut the program short).
    """
    if policy is None:
        policy = default_policy(pnet, seed)
    program = scenario.program(pnet, policy, seed)
    net = build_network(pnet.planes, kind=engine, obs=obs, **engine_kwargs)
    flows = bind(program, net)
    trial = run_trial(net, flows, until=until, promotion=promotion)
    return ScenarioResult(
        scenario=scenario.name,
        engine=engine,
        seed=seed,
        program=program,
        trial=trial,
        chains=chain_stats(program, trial.records),
    )


@dataclass
class SteadyStateReport:
    """Warm-up-trimmed steady-state estimates with error bars."""

    scenario: str
    engine: str
    seed: int
    duration: float
    warmup: float
    #: Arrivals in the generated program / in the measurement window.
    n_flows: int
    n_measured: int
    #: The configured load target (fraction of aggregate capacity).
    target_load: float
    #: Realised offered load over the measurement window, with its
    #: batch-means CI over time bins (the statistical sanity check:
    #: the target must sit inside this interval).
    offered_load: MeanCI
    #: Delivered goodput over the window, bits/second.
    throughput_bps: float
    #: FCT distribution of measured flows.
    fct: Summary
    #: Batch-means CI of the mean FCT (completion-order batches).
    fct_mean: MeanCI

    def to_row(self) -> Dict[str, Any]:
        """Flat dict for benchmark emission / CSV rendering."""
        return {
            "scenario": self.scenario,
            "engine": self.engine,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "n_flows": self.n_flows,
            "n_measured": self.n_measured,
            "target_load": self.target_load,
            "offered_load": self.offered_load.mean,
            "offered_load_ci": [
                self.offered_load.low, self.offered_load.high
            ],
            "throughput_bps": self.throughput_bps,
            "fct_mean": self.fct_mean.mean,
            "fct_mean_ci": [self.fct_mean.low, self.fct_mean.high],
            "fct_median": self.fct.median,
            "fct_p99": self.fct.p99,
        }


def steady_state(
    scenario,
    pnet,
    engine: str = "packet",
    policy=None,
    seed: int = 0,
    warmup_frac: float = 0.2,
    n_batches: int = 10,
    confidence: float = 0.95,
    promotion: Optional[Any] = None,
    obs=None,
    **engine_kwargs: Any,
) -> SteadyStateReport:
    """Sustained open-loop run with warm-up trimming and CIs.

    ``scenario`` must be an open-loop generator exposing ``duration``,
    ``load``, and (per the :class:`~repro.workloads.diurnal.
    DiurnalScenario` contract) a ``host_rate``-aware program whose meta
    carries the resolved ``host_rate`` -- in practice a
    ``DiurnalScenario`` (``amplitude=0`` for a flat steady state).

    The first ``warmup_frac`` of the horizon is discarded (transient
    ramp); flows *arriving* inside the measurement window contribute to
    the offered-load and FCT estimates.  Offered load gets a
    batch-means CI over equal time bins of the window, mean FCT over
    completion-order batches.
    """
    duration = getattr(scenario, "duration", None)
    target_load = getattr(scenario, "load", None)
    if duration is None or target_load is None:
        raise WorkloadError(
            f"steady_state needs an open-loop scenario with duration/"
            f"load knobs, got {type(scenario).__name__}"
        )
    if not 0 <= warmup_frac < 1:
        raise WorkloadError(
            f"warmup_frac must be in [0, 1), got {warmup_frac}"
        )
    result = run_scenario(
        scenario, pnet, engine=engine, policy=policy, seed=seed,
        promotion=promotion, obs=obs, **engine_kwargs,
    )
    warmup = warmup_frac * duration
    window = duration - warmup
    measured = [
        r for r in result.records if record_start(r) >= warmup
    ]
    if len(measured) < 2 * n_batches:
        raise WorkloadError(
            f"only {len(measured)} flows in the measurement window; "
            f"lengthen duration or raise load (need "
            f">= {2 * n_batches})"
        )
    host_rate = result.program.meta["host_rate"]
    capacity = len(pnet.hosts) * host_rate

    # Offered load per time bin: arrivals bucketed over the window.
    bin_bits = [0.0] * n_batches
    for r in measured:
        b = min(
            int((record_start(r) - warmup) / window * n_batches),
            n_batches - 1,
        )
        bin_bits[b] += 8 * r.size
    bin_loads = [
        bits / (window / n_batches) / capacity for bits in bin_bits
    ]
    # Disjoint windows of a Poisson process are independent, so the
    # plain t-interval over the bins is sound here.
    offered = mean_ci(bin_loads, confidence=confidence)

    measured.sort(key=record_finish)
    fcts = [r.fct for r in measured]
    span = record_finish(measured[-1]) - warmup
    throughput = 8 * sum(r.size for r in measured) / max(span, window)
    return SteadyStateReport(
        scenario=result.scenario,
        engine=engine,
        seed=seed,
        duration=duration,
        warmup=warmup,
        n_flows=result.program.n_flows,
        n_measured=len(measured),
        target_load=target_load,
        offered_load=offered,
        throughput_bps=throughput,
        fct=summarize(fcts),
        fct_mean=batch_means_ci(
            fcts, n_batches=n_batches, confidence=confidence
        ),
    )
