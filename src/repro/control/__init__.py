"""repro.control -- online adaptive path control plane.

Closes the loop from measurement to path decision while the simulation
runs: a deterministic, seedable :class:`Controller` samples
per-subflow/per-plane state every ``PNET_CONTROL_INTERVAL`` simulated
seconds, feeds it to a pluggable :class:`ResteerPolicy`
(``ecmp-reshuffle`` | ``flowlet`` | ``load-aware``), and applies the
decisions through the engine-agnostic resteer actions shared with
:mod:`repro.faults`.  Enable it with ``run_trial(control=...)`` on any
engine, or via ``PNET_CONTROL_POLICY``; sharded packet runs drive the
same policy objects at lookahead barriers (:mod:`.sharded`) instead of
falling back to serial.
"""

from repro.control import actions
from repro.control.controller import (
    DEFAULT_CONTROL_INTERVAL,
    Controller,
    ControlStats,
    as_controller,
    get_control_interval,
    get_control_policy,
)
from repro.control.monitor import (
    ControlMonitor,
    ControlSample,
    FlowView,
    sample_fluid_rows,
    sample_packet_rows,
)
from repro.control.policy import (
    DEFAULT_COOLDOWN,
    DEFAULT_HYSTERESIS,
    POLICIES,
    EcmpReshufflePolicy,
    FlowletPolicy,
    LoadAwarePolicy,
    ResteerDecision,
    ResteerPolicy,
    get_control_cooldown,
    get_control_hysteresis,
    make_policy,
)
from repro.control.sharded import ShardControlDriver

__all__ = [
    "DEFAULT_CONTROL_INTERVAL",
    "DEFAULT_COOLDOWN",
    "DEFAULT_HYSTERESIS",
    "POLICIES",
    "Controller",
    "ControlMonitor",
    "ControlSample",
    "ControlStats",
    "EcmpReshufflePolicy",
    "FlowView",
    "FlowletPolicy",
    "LoadAwarePolicy",
    "ResteerDecision",
    "ResteerPolicy",
    "ShardControlDriver",
    "actions",
    "as_controller",
    "get_control_cooldown",
    "get_control_hysteresis",
    "get_control_interval",
    "get_control_policy",
    "make_policy",
    "sample_fluid_rows",
    "sample_packet_rows",
]
