"""Per-subflow / per-plane state sampling for the control loop.

The monitor is the measurement half of :mod:`repro.control`: engines
(or shard workers) produce plain-dict *rows* describing their live
flows, and :class:`ControlMonitor` turns consecutive snapshots into a
:class:`ControlSample` of per-tick byte progress -- the one vocabulary
every :class:`~repro.control.policy.ResteerPolicy` consumes, regardless
of engine.

Rows are deliberately plain picklable dicts (no simulator references):
the shard engine ships them over its channel backends unchanged, and
the monitor itself rides checkpoints inside the controller.

Two row flavours cover the engines:

* ``"acked"`` -- cumulative per-subflow ACKed bytes (packet engine).
  Progress is the delta against the previous sample; a relaunch (new
  flow id, or counters that went backwards) restarts from zero.
* ``"rate"`` -- instantaneous per-subflow rates in bits/s (fluid
  engine).  Progress is ``rate / 8 * interval``, the bytes the subflow
  moves in one control period at the current allocation.

Per-plane load is the same unit (bytes progressed this tick): queue
counter deltas for planes carrying packet traffic, plus the rate-row
contribution for fluid traffic -- so a hybrid run sees one coherent
load vector across both engines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.pnet import PlanePath


class FlowView:
    """One live flow as a policy sees it at a control tick."""

    __slots__ = (
        "gid", "src", "dst", "size", "paths", "transport", "tag",
        "acked", "progress",
    )

    def __init__(self, gid, src, dst, size, paths, transport, tag,
                 acked, progress):
        self.gid = gid
        self.src = src
        self.dst = dst
        self.size = size
        self.paths: List[PlanePath] = paths
        self.transport = transport
        self.tag = tag
        #: Cumulative per-subflow ACKed bytes (packet flows; None for
        #: rate-sampled fluid flows, where delivered bytes stay with
        #: the flow across migrations and never enter the decision).
        self.acked: Optional[List[int]] = acked
        #: Bytes each subflow progressed this control period.
        self.progress: List[float] = progress

    @property
    def total_progress(self) -> float:
        return sum(self.progress)

    @property
    def total_acked(self) -> int:
        return 0 if self.acked is None else int(sum(self.acked))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowView(gid={self.gid!r}, {self.src}->{self.dst}, "
            f"progress={self.progress})"
        )


class ControlSample:
    """Everything one control tick knows about the network."""

    __slots__ = ("now", "interval", "n_planes", "plane_load", "flows")

    def __init__(self, now, interval, n_planes, plane_load, flows):
        self.now: float = now
        self.interval: float = interval
        self.n_planes: int = n_planes
        #: plane index -> bytes progressed on that plane this tick
        #: (every plane present, idle planes at 0.0).
        self.plane_load: Dict[int, float] = plane_load
        self.flows: List[FlowView] = flows

    def mean_load(self) -> float:
        if not self.plane_load:
            return 0.0
        return sum(self.plane_load.values()) / len(self.plane_load)


def packet_subflow_acked(source) -> List[int]:
    """Cumulative per-subflow ACKed bytes of a packet source.

    MPTCP sources expose one counter per subflow; plain TCP (and DCTCP)
    sources are their own single subflow.
    """
    subflows = getattr(source, "subflows", None)
    if subflows is not None:
        return [int(sf.snd_una) for sf in subflows]
    return [int(source.snd_una)]


def sample_packet_rows(net, gid_of=None):
    """Snapshot a :class:`~repro.sim.network.PacketNetwork`.

    Returns ``(plane_cum, rows)``: cumulative per-plane forwarded bytes
    and one ``"acked"`` row per live flow.  ``gid_of`` optionally maps
    the network's flow ids to caller-stable ids (shard workers map to
    global ids; the hybrid controller namespaces by engine).
    """
    plane_cum = {
        plane: float(totals.get("bytes_forwarded", 0))
        for plane, totals in net.plane_queue_totals().items()
    }
    rows = []
    for fid, source, spec in net.active_flows():
        if getattr(source, "completed", False):
            continue
        if getattr(source, "start_time", None) is None:
            # Submitted but not started (spec.at is in the future):
            # resteering it would relaunch -- and start -- it early.
            continue
        rows.append({
            "gid": fid if gid_of is None else gid_of(fid),
            "src": spec.src,
            "dst": spec.dst,
            "size": spec.size,
            "paths": list(spec.paths),
            "transport": spec.transport,
            "tag": spec.tag,
            "acked": packet_subflow_acked(source),
        })
    return plane_cum, rows


def sample_fluid_rows(sim, gid_of=None):
    """Snapshot a :class:`~repro.fluid.flowsim.FluidSimulator`.

    One ``"rate"`` row per live flow, from the simulator's
    ``active_subflow_views`` control hook.
    """
    rows = []
    for fid, src, dst, size, paths, rates in sim.active_subflow_views():
        rows.append({
            "gid": fid if gid_of is None else gid_of(fid),
            "src": src,
            "dst": dst,
            "size": size,
            "paths": list(paths),
            "transport": "tcp",
            "tag": None,
            "rate": [float(r) for r in rates],
        })
    return rows


class ControlMonitor:
    """Differencing state between control ticks (picklable).

    Keeps the previous cumulative counters (per plane and per flow) so
    each :meth:`ingest` yields per-tick progress.  State for flows that
    disappeared is pruned, so long runs stay bounded.
    """

    def __init__(self):
        self._prev_plane: Dict[int, float] = {}
        self._prev_acked: Dict[Any, List[int]] = {}

    def ingest(
        self,
        now: float,
        interval: float,
        n_planes: int,
        rows: List[Dict[str, Any]],
        plane_cum: Optional[Dict[int, float]] = None,
    ) -> ControlSample:
        """Fold one raw snapshot into a :class:`ControlSample`."""
        plane_load = {plane: 0.0 for plane in range(n_planes)}
        if plane_cum is not None:
            for plane, cum in plane_cum.items():
                prev = self._prev_plane.get(plane, 0.0)
                plane_load[plane] = max(cum - prev, 0.0)
                self._prev_plane[plane] = cum

        flows: List[FlowView] = []
        seen = set()
        for row in rows:
            gid = row["gid"]
            seen.add(gid)
            acked = row.get("acked")
            if acked is not None:
                prev = self._prev_acked.get(gid)
                if (
                    prev is not None
                    and len(prev) == len(acked)
                    and all(a >= p for a, p in zip(acked, prev))
                ):
                    progress = [
                        float(a - p) for a, p in zip(acked, prev)
                    ]
                else:
                    # New flow, or a relaunch restarted the counters.
                    progress = [float(a) for a in acked]
                self._prev_acked[gid] = list(acked)
            else:
                rates = row["rate"]
                progress = [r / 8.0 * interval for r in rates]
                # Rate traffic never reaches the plane counters; add
                # its projected bytes so the load vector covers it.
                for (plane, __), p in zip(row["paths"], progress):
                    plane_load[plane] = plane_load.get(plane, 0.0) + p
            flows.append(FlowView(
                gid=gid,
                src=row["src"],
                dst=row["dst"],
                size=row["size"],
                paths=list(row["paths"]),
                transport=row.get("transport", "tcp"),
                tag=row.get("tag"),
                acked=None if acked is None else list(acked),
                progress=progress,
            ))

        for gid in [g for g in self._prev_acked if g not in seen]:
            del self._prev_acked[gid]
        return ControlSample(
            now=now,
            interval=interval,
            n_planes=n_planes,
            plane_load=plane_load,
            flows=flows,
        )

    def rekey(self, old, new) -> None:
        """Carry a flow's differencing state across an id change.

        Serial packet resteers assign the relaunch a fresh flow id; the
        baseline must *not* carry over (the relaunch restarts its ACK
        counters), so the old entry is simply dropped -- the method
        exists so callers can treat monitor and policy uniformly.
        """
        self._prev_acked.pop(old, None)
