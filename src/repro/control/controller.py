"""The deterministic control loop for serial engines.

A :class:`Controller` samples per-subflow/per-plane state every
``interval`` simulated seconds (``PNET_CONTROL_INTERVAL``), feeds the
:class:`~repro.control.monitor.ControlSample` to its
:class:`~repro.control.policy.ResteerPolicy`, and applies the decisions
through :mod:`repro.control.actions` -- abort+relaunch on the packet
engine, in-place migrate on the fluid one, and per-flow routing between
the two on a hybrid network.

It attaches to any of the three engines (:func:`repro.api.run_trial`'s
``control=`` does this) as a self-rescheduling simulated-clock timer,
the same shape as :class:`repro.faults.FaultInjector` events and
:class:`repro.core.adaptive.AdaptiveRouter` ticks -- a picklable bound
method, so policy and monitor state ride :mod:`repro.ckpt` snapshots
and a resumed run continues the loop byte-identically.

Sharded runs do not attach a controller; the shard engine drives the
same policy/monitor objects at its lookahead barriers (see
:mod:`repro.control.sharded`).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Union

from repro.control import actions
from repro.control.monitor import (
    ControlMonitor,
    sample_fluid_rows,
    sample_packet_rows,
)
from repro.control.policy import ResteerPolicy, make_policy
from repro.core.pnet import PNet
from repro.fluid.flowsim import FluidSimulator
from repro.hybrid.engine import HybridSimulator
from repro.obs import get_registry
from repro.sim.network import PacketNetwork

#: Default control period in simulated seconds -- one order above
#: datacenter RTTs, the same ballpark as the DARD epoch.
DEFAULT_CONTROL_INTERVAL = 1e-3


def get_control_interval(override: Optional[float] = None) -> float:
    """Resolve the control period: override, else ``PNET_CONTROL_INTERVAL``."""
    if override is None:
        raw = os.environ.get("PNET_CONTROL_INTERVAL", "")
        if not raw:
            return DEFAULT_CONTROL_INTERVAL
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_CONTROL_INTERVAL must be a number, got {raw!r}"
            ) from None
    if override <= 0:
        raise ValueError(f"control interval must be > 0, got {override}")
    return override


def get_control_policy(override: Optional[str] = None) -> Optional[str]:
    """Resolve the policy name: override, else ``PNET_CONTROL_POLICY``.

    Returns ``None`` (control off) when unset, empty, or ``"off"``.
    """
    if override is None:
        override = os.environ.get("PNET_CONTROL_POLICY", "")
    name = override.strip()
    if not name or name == "off":
        return None
    return name


@dataclass
class ControlStats:
    """Plain counters mirroring the controller's obs metrics."""

    ticks: int = 0
    decisions: int = 0
    applied: int = 0
    missed: int = 0
    #: Sharded runs only: decisions narrowed to one shard, and flows
    #: invisible to control because they span shards.
    narrowed: int = 0
    skipped_spanning: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class Controller:
    """Periodic sample -> decide -> apply loop on one live network.

    Args:
        policy: a :class:`ResteerPolicy` instance or a registered name
            (``"ecmp-reshuffle"`` | ``"flowlet"`` | ``"load-aware"``).
        interval: control period on the simulated clock; default
            ``PNET_CONTROL_INTERVAL`` (else 1 ms).  Ticks land on
            absolute multiples of the interval, so serial and sharded
            runs sample at the same instants.
        seed: forwarded to the policy when built from a name.
        pnet: routing view for path candidates; derived from the
            network's planes at :meth:`attach` when omitted.
    """

    def __init__(
        self,
        policy: Union[ResteerPolicy, str],
        interval: Optional[float] = None,
        seed: int = 0,
        pnet: Optional[PNet] = None,
    ):
        if isinstance(policy, str):
            policy = make_policy(policy, pnet=pnet, seed=seed)
        self.policy = policy
        self.interval = get_control_interval(interval)
        self.pnet = pnet
        self.monitor = ControlMonitor()
        self.stats = ControlStats()
        self._network = None
        self._obs = None
        #: Optional ``fn(old_fid, new_fid)`` observer for serial packet
        #: resteers (the shard engine's one-shard path re-keys its
        #: gid table through this).  Must be picklable if set.
        self.on_rekey = None

    def fingerprint(self) -> Dict[str, Any]:
        fp = dict(self.policy.fingerprint())
        fp["interval"] = self.interval
        return fp

    # --- wiring -------------------------------------------------------------

    def attach(self, network) -> None:
        """Start the loop on a serial engine's simulated clock."""
        if self._network is not None:
            raise RuntimeError("controller is already attached")
        if self.pnet is None:
            self.pnet = PNet(network.planes)
        self.policy.bind(self.pnet)
        self._network = network
        self._obs = getattr(network, "obs", None) or get_registry()
        self._schedule(self.interval)

    def _schedule(self, at: float) -> None:
        net = self._network
        # Bound method, not a closure: pending ticks must pickle so a
        # checkpoint taken mid-run resumes the control loop.
        if isinstance(net, PacketNetwork):
            net.loop.schedule_at(at, self._tick)
        elif isinstance(net, (FluidSimulator, HybridSimulator)):
            net.schedule(at, self._tick)
        else:
            raise TypeError(
                f"cannot attach a controller to {type(net).__name__}; "
                "expected PacketNetwork, FluidSimulator or HybridSimulator"
            )

    def _now(self) -> float:
        net = self._network
        if isinstance(net, PacketNetwork):
            return net.loop.now
        return net.now

    # --- the loop -----------------------------------------------------------

    def _tick(self) -> None:
        net = self._network
        now = self._now()
        self.stats.ticks += 1
        sample = self._sample(now)
        decisions = self.policy.decide(sample)
        self.stats.decisions += len(decisions)
        for decision in decisions:
            if self._apply(decision):
                self.stats.applied += 1
            else:
                self.stats.missed += 1
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.counter("control.ticks").inc()
            if decisions:
                obs.counter("control.decisions").inc(len(decisions))
            obs.gauge("control.flows_seen").set(len(sample.flows))
        if _has_pending(net):
            self._schedule(now + self.interval)

    def _sample(self, now: float):
        net = self._network
        n_planes = len(net.planes)
        if isinstance(net, PacketNetwork):
            plane_cum, rows = sample_packet_rows(net)
        elif isinstance(net, FluidSimulator):
            plane_cum = None
            rows = sample_fluid_rows(net)
        else:  # hybrid: both sub-engines, ids namespaced per engine
            plane_cum, rows = sample_packet_rows(
                net.packet, gid_of=lambda fid: ("packet", fid)
            )
            rows += sample_fluid_rows(
                net.fluid, gid_of=lambda fid: ("fluid", fid)
            )
        return self.monitor.ingest(
            now, self.interval, n_planes, rows, plane_cum=plane_cum
        )

    def _apply(self, decision) -> bool:
        net = self._network
        gid = decision.gid
        if isinstance(net, HybridSimulator):
            engine, fid = gid
            if engine == "packet":
                return self._apply_packet(net.packet, fid, decision, gid)
            return actions.migrate(net.fluid, fid, decision.paths)
        if isinstance(net, FluidSimulator):
            return actions.migrate(net, gid, decision.paths)
        return self._apply_packet(net, gid, decision, gid)

    def _apply_packet(self, net, fid: int, decision, gid) -> bool:
        entry = _find_active(net, fid)
        if entry is None:
            return False  # completed between sample and apply
        source, spec = entry
        # Relaunches happen at the tick instant; under a hybrid run the
        # packet loop may sit exactly at the shared frontier, never past
        # it, so the max is a no-op guard.
        at = max(self._now(), net.loop.now)
        new_source = actions.abort_and_relaunch(
            net, fid, source, spec, decision.paths, at
        )
        if new_source is None:
            return False
        new_fid = net.flow_id_of(new_source)
        if new_fid is not None:
            new_gid = (
                (gid[0], new_fid) if isinstance(gid, tuple) else new_fid
            )
            self.policy.rekey(gid, new_gid)
            self.monitor.rekey(gid, new_gid)
            if self.on_rekey is not None:
                self.on_rekey(fid, new_fid)
        return True


def as_controller(control) -> Controller:
    """Coerce ``control=`` spellings to a :class:`Controller`.

    Accepts a live controller, a policy object, or a registered policy
    name.
    """
    if isinstance(control, Controller):
        return control
    if isinstance(control, (ResteerPolicy, str)):
        return Controller(control)
    raise TypeError(
        f"control= expects a Controller, ResteerPolicy or policy name, "
        f"got {type(control).__name__}"
    )


def _find_active(net, fid: int):
    for flow_id, source, spec in net.active_flows():
        if flow_id == fid:
            return source, spec
    return None


def _has_pending(network) -> bool:
    """Any simulation work left (the tick itself excluded)?

    The controller stops rescheduling when the answer is no; on the
    packet engine an eternal timer would otherwise keep
    ``run(until=inf)`` from ever draining its heap.
    """
    if isinstance(network, PacketNetwork):
        return any(
            not event.cancelled for __, __s, event in network.loop._heap
        )
    if isinstance(network, HybridSimulator):
        return _has_pending(network.packet) or _has_pending(network.fluid)
    return bool(
        network._active or network._arrivals or network._timers
    )
