"""Pluggable resteering policies.

A :class:`ResteerPolicy` looks at one :class:`~repro.control.monitor.
ControlSample` per tick and returns :class:`ResteerDecision` s -- flow
id plus the new (plane, path) set.  Policies are deterministic pure
state machines over the sample stream: seeded, picklable (their state
rides checkpoints), and engine-agnostic (they never touch a simulator;
the controller or shard engine applies their decisions through
:mod:`repro.control.actions`).

Built-ins, resolvable by name through :func:`make_policy` (and the
``PNET_CONTROL_POLICY`` environment knob):

* ``"ecmp-reshuffle"`` -- when some plane runs hot, re-hash the flows
  touching it onto fresh ECMP choices (new salt per tick), the
  cheapest stateless reaction.
* ``"flowlet"`` -- idle-gap triggered switching: a flow that moved no
  bytes for ``idle_ticks`` consecutive samples is at a flowlet
  boundary (or black-holed) and is re-hashed with a per-flow bump
  counter.
* ``"load-aware"`` -- steer the worst subflow of the most-imbalanced
  MPTCP flow onto the least-loaded plane, guarded by a hysteresis
  ratio and a per-flow cooldown so placements cannot oscillate.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from repro.control.actions import same_paths
from repro.core.pnet import PlanePath, PNet
from repro.routing.ecmp import flow_hash

#: Default hysteresis for load-aware plane selection: the current plane
#: must carry more than this multiple of the target plane's load.
DEFAULT_HYSTERESIS = 2.0
#: Default per-flow cooldown (simulated seconds) between moves.
DEFAULT_COOLDOWN = 0.0


def get_control_hysteresis(override: Optional[float] = None) -> float:
    """Resolve the load-aware hysteresis ratio (``PNET_CONTROL_HYSTERESIS``)."""
    if override is None:
        raw = os.environ.get("PNET_CONTROL_HYSTERESIS", "")
        if not raw:
            return DEFAULT_HYSTERESIS
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_CONTROL_HYSTERESIS must be a number, got {raw!r}"
            ) from None
    if override < 1.0:
        raise ValueError(
            f"hysteresis must be >= 1 (got {override}); ratios below 1 "
            "move flows toward *more* loaded planes and oscillate"
        )
    return override


def get_control_cooldown(override: Optional[float] = None) -> float:
    """Resolve the per-flow move cooldown (``PNET_CONTROL_COOLDOWN``)."""
    if override is None:
        raw = os.environ.get("PNET_CONTROL_COOLDOWN", "")
        if not raw:
            return DEFAULT_COOLDOWN
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_CONTROL_COOLDOWN must be a number, got {raw!r}"
            ) from None
    if override < 0:
        raise ValueError(f"cooldown must be >= 0, got {override}")
    return override


class ResteerDecision:
    """Move one flow onto ``paths`` (applied atomically per flow)."""

    __slots__ = ("gid", "paths", "reason")

    def __init__(self, gid, paths: Sequence[PlanePath], reason: str = ""):
        self.gid = gid
        self.paths: List[PlanePath] = list(paths)
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResteerDecision(gid={self.gid!r}, reason={self.reason!r})"


class ResteerPolicy:
    """Base policy: observe a sample, decide nothing.

    Subclasses override :meth:`decide`.  ``pnet`` supplies candidate
    paths; it may be bound late (:meth:`bind`) so policies can be named
    before the network exists (CLI/env wiring).
    """

    name = "static"

    def __init__(self, pnet: Optional[PNet] = None, seed: int = 0):
        self.pnet = pnet
        self.seed = seed

    def bind(self, pnet: PNet) -> None:
        """Attach the routing view (no-op if already bound)."""
        if self.pnet is None:
            self.pnet = pnet

    def decide(self, sample) -> List[ResteerDecision]:
        return []

    def rekey(self, old, new) -> None:
        """Carry per-flow policy state across a flow-id change.

        Serial packet resteers give the relaunch a fresh id; policies
        that key state by flow id move it here so hysteresis/cooldowns
        survive.  Base keeps no per-flow state.
        """

    def fingerprint(self) -> Dict[str, Any]:
        """Stable description of the policy configuration (for results
        metadata and content-keyed experiment caching)."""
        return {"policy": self.name, "seed": self.seed}

    # --- shared helpers ----------------------------------------------------

    def _hashed_path(
        self, src: str, dst: str, gid_hash: int, salt: int
    ) -> Optional[PlanePath]:
        """One ECMP-style (plane, path) pick, skipping dead planes."""
        pnet = self.pnet
        n = pnet.n_planes
        for probe in range(n):
            plane = flow_hash(src, dst, gid_hash, salt + probe) % n
            options = pnet.shortest_paths(plane, src, dst)
            if options:
                pick = flow_hash(src, dst, gid_hash, salt + probe + 1)
                return (plane, options[pick % len(options)])
        return None

    def _rehash_paths(
        self, flow, salt: int
    ) -> Optional[List[PlanePath]]:
        """Fresh hashed paths for every subflow (None if unroutable)."""
        new_paths: List[PlanePath] = []
        gid_hash = _gid_hash(flow.gid)
        for index in range(len(flow.paths)):
            picked = self._hashed_path(
                flow.src, flow.dst, gid_hash + 7919 * index, salt
            )
            if picked is None:
                return None
            new_paths.append(picked)
        return new_paths


def _gid_hash(gid) -> int:
    """Deterministic int for a flow id.

    Plain ints pass through; the hybrid controller namespaces ids as
    ``(engine, fid)`` tuples, which mix engine-name characters and the
    sub-engine id (never Python's randomized ``hash``).
    """
    if isinstance(gid, int):
        return gid
    if isinstance(gid, str):
        mix = 0
        for ch in gid:
            mix = (mix * 131 + ord(ch)) & 0x7FFFFFFF
        return mix
    mix = 0
    for part in gid:
        mix = (mix * 1000003 + _gid_hash(part)) & 0x7FFFFFFF
    return mix


class EcmpReshufflePolicy(ResteerPolicy):
    """Re-hash flows off overloaded planes (stateless ECMP shuffle).

    When a plane's per-tick load exceeds ``overload`` times the mean,
    every flow with a subflow on it is re-hashed onto fresh ECMP
    choices -- new salt each tick, so repeated collisions resolve.  At
    most ``max_moves`` flows move per tick to bound churn.
    """

    name = "ecmp-reshuffle"

    def __init__(
        self,
        pnet: Optional[PNet] = None,
        seed: int = 0,
        overload: float = 1.5,
        max_moves: int = 4,
    ):
        super().__init__(pnet, seed)
        if overload <= 1.0:
            raise ValueError(f"overload factor must be > 1, got {overload}")
        self.overload = overload
        self.max_moves = max_moves
        self._tick = 0

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "policy": self.name, "seed": self.seed,
            "overload": self.overload, "max_moves": self.max_moves,
        }

    def decide(self, sample) -> List[ResteerDecision]:
        self._tick += 1
        mean = sample.mean_load()
        if mean <= 0:
            return []
        hot = {
            plane
            for plane, load in sample.plane_load.items()
            if load > self.overload * mean
        }
        if not hot:
            return []
        salt = self.seed + 1000003 * self._tick
        decisions: List[ResteerDecision] = []
        for flow in sample.flows:
            if len(decisions) >= self.max_moves:
                break
            if not any(plane in hot for plane, __ in flow.paths):
                continue
            new_paths = self._rehash_paths(flow, salt)
            if new_paths is None or same_paths(new_paths, flow.paths):
                continue
            decisions.append(ResteerDecision(
                flow.gid, new_paths, reason="reshuffle"
            ))
        return decisions


class FlowletPolicy(ResteerPolicy):
    """Idle-gap triggered switching.

    A flow that progressed zero bytes for ``idle_ticks`` consecutive
    samples is either between flowlets or stuck on a bad path; both
    cases re-hash it (per-flow bump counter, so each retry lands
    elsewhere) with nothing in flight to reorder.
    """

    name = "flowlet"

    def __init__(
        self,
        pnet: Optional[PNet] = None,
        seed: int = 0,
        idle_ticks: int = 1,
        max_moves: int = 4,
    ):
        super().__init__(pnet, seed)
        if idle_ticks < 1:
            raise ValueError(f"idle_ticks must be >= 1, got {idle_ticks}")
        self.idle_ticks = idle_ticks
        self.max_moves = max_moves
        self._idle: Dict[Any, int] = {}
        self._bump: Dict[Any, int] = {}

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "policy": self.name, "seed": self.seed,
            "idle_ticks": self.idle_ticks, "max_moves": self.max_moves,
        }

    def rekey(self, old, new) -> None:
        if old in self._bump:
            self._bump[new] = self._bump.pop(old)
        self._idle.pop(old, None)

    def decide(self, sample) -> List[ResteerDecision]:
        seen = set()
        decisions: List[ResteerDecision] = []
        for flow in sample.flows:
            seen.add(flow.gid)
            if flow.total_progress > 0:
                self._idle[flow.gid] = 0
                continue
            idle = self._idle.get(flow.gid, 0) + 1
            self._idle[flow.gid] = idle
            if idle < self.idle_ticks or len(decisions) >= self.max_moves:
                continue
            bump = self._bump.get(flow.gid, 0) + 1
            self._bump[flow.gid] = bump
            salt = self.seed + 104729 * bump
            new_paths = self._rehash_paths(flow, salt)
            if new_paths is None or same_paths(new_paths, flow.paths):
                continue
            self._idle[flow.gid] = 0
            decisions.append(ResteerDecision(
                flow.gid, new_paths, reason="flowlet-idle"
            ))
        for gid in [g for g in self._idle if g not in seen]:
            del self._idle[gid]
        for gid in [g for g in self._bump if g not in seen]:
            del self._bump[gid]
        return decisions


class LoadAwarePolicy(ResteerPolicy):
    """Steer the worst subflow of the most-imbalanced MPTCP flow.

    Each tick: rank multipath flows by subflow progress spread, take
    the most imbalanced, and move its slowest subflow onto the
    least-loaded plane -- but only when the current plane carries more
    than ``hysteresis`` times the target plane's load, and the flow has
    not moved within ``cooldown`` simulated seconds.  ``max_moves``
    flows move per tick (default 1: one careful move beats many rash
    ones, and keeps the loop analyzable).
    """

    name = "load-aware"

    def __init__(
        self,
        pnet: Optional[PNet] = None,
        seed: int = 0,
        hysteresis: Optional[float] = None,
        cooldown: Optional[float] = None,
        max_moves: int = 1,
    ):
        super().__init__(pnet, seed)
        self.hysteresis = get_control_hysteresis(hysteresis)
        self.cooldown = get_control_cooldown(cooldown)
        self.max_moves = max_moves
        self._last_move: Dict[Any, float] = {}

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "policy": self.name, "seed": self.seed,
            "hysteresis": self.hysteresis, "cooldown": self.cooldown,
            "max_moves": self.max_moves,
        }

    def rekey(self, old, new) -> None:
        if old in self._last_move:
            self._last_move[new] = self._last_move.pop(old)

    def decide(self, sample) -> List[ResteerDecision]:
        loads = sample.plane_load
        ranked = []
        for flow in sample.flows:
            if len(flow.paths) < 2 or len(flow.progress) != len(flow.paths):
                continue
            last = self._last_move.get(flow.gid)
            if last is not None and sample.now - last < self.cooldown:
                continue
            spread = max(flow.progress) - min(flow.progress)
            if spread <= 0:
                continue
            ranked.append((spread, flow))
        # Most imbalanced first; flow id breaks ties deterministically.
        ranked.sort(key=lambda pair: (-pair[0], _sort_key(pair[1].gid)))

        decisions: List[ResteerDecision] = []
        for __, flow in ranked:
            if len(decisions) >= self.max_moves:
                break
            worst = min(
                range(len(flow.progress)), key=lambda i: (flow.progress[i], i)
            )
            current_plane = flow.paths[worst][0]
            used = {plane for plane, __p in flow.paths}
            candidates = sorted(
                (plane for plane in loads if plane not in used),
                key=lambda plane: (loads[plane], plane),
            ) or sorted(
                (plane for plane in loads if plane != current_plane),
                key=lambda plane: (loads[plane], plane),
            )
            for target in candidates:
                if loads[current_plane] <= self.hysteresis * loads[target]:
                    break  # candidates are load-sorted: none clears it
                options = self.pnet.shortest_paths(
                    target, flow.src, flow.dst
                )
                if not options:
                    continue
                new_paths = list(flow.paths)
                new_paths[worst] = (target, options[0])
                decisions.append(ResteerDecision(
                    flow.gid, new_paths, reason="load-aware"
                ))
                self._last_move[flow.gid] = sample.now
                break
        return decisions


def _sort_key(gid):
    """Total order over flow ids (ints and engine-namespaced tuples)."""
    if isinstance(gid, tuple):
        return (1,) + tuple(_sort_key(part) for part in gid)
    return (0, gid)


#: Name -> class, the registry behind ``PNET_CONTROL_POLICY`` and the
#: ``control="<name>"`` spelling of :func:`repro.api.run_trial`.
POLICIES = {
    EcmpReshufflePolicy.name: EcmpReshufflePolicy,
    FlowletPolicy.name: FlowletPolicy,
    LoadAwarePolicy.name: LoadAwarePolicy,
}


def make_policy(
    name: str, pnet: Optional[PNet] = None, seed: int = 0, **knobs: Any
) -> ResteerPolicy:
    """Build a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown control policy {name!r} "
            f"(known: {', '.join(sorted(POLICIES))})"
        ) from None
    return cls(pnet=pnet, seed=seed, **knobs)
