"""Barrier-driven control for the sharded packet engine.

A sharded run cannot let the serial :class:`Controller` tick inside one
worker -- decisions depend on the *global* plane-load vector, and
resteers may move a flow onto planes owned by another shard.  Instead
the shard engine owns the cadence: at each lookahead barrier whose time
has crossed the next control instant it

1. posts a ``control-sample`` request to every worker and merges the
   plane counters (disjoint plane sets, so the union is exact) and flow
   rows into one global snapshot,
2. runs the *same* monitor + policy objects a serial run would use, and
3. partitions the decisions into per-shard ``control-apply`` batches
   that each worker executes locally (abort + relaunch with a stable
   global flow id).

Workers are quiescent between sample and apply -- both happen at the
same barrier, so the cumulative ACK counters sampled in step 1 are
still exact in step 3 and the remainder can be computed engine-side.
Everything that travels is plain picklable dicts, identical across the
shm and process channel backends, and every merge is sorted -- the
global decision sequence is deterministic regardless of reply order.

Flows that span shards are coupled through wire stubs, not live local
sources; resteering them would race the coupling digests, so the driver
skips them (counted in ``stats.skipped_spanning``).  Decisions whose
new path set crosses shard boundaries are narrowed to the shard with
the most paths (counted in ``stats.narrowed``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.control.actions import clamp_transport
from repro.control.controller import Controller, ControlStats
from repro.control.monitor import ControlMonitor
from repro.core.flowspec import FlowSpec
from repro.core.pnet import PNet


class ShardControlDriver:
    """Runs one controller's policy at the shard engine's barriers."""

    def __init__(
        self,
        controller: Controller,
        planes: Sequence,
        plane_shard: Dict[int, int],
        flow_shard: Dict[int, int],
        spanning_gids: Set[int],
    ):
        self.policy = controller.policy
        self.interval = controller.interval
        self.monitor: ControlMonitor = controller.monitor
        self.stats: ControlStats = controller.stats
        self.n_planes = len(planes)
        #: plane index -> owning shard (from the partition plan).
        self.plane_shard = dict(plane_shard)
        #: global flow id -> shard that owns its live source.
        self.owner = dict(flow_shard)
        self.spanning = set(spanning_gids)
        self.stats.skipped_spanning += len(self.spanning)
        self.next_tick = self.interval
        if controller.pnet is None:
            controller.pnet = PNet(list(planes))
        self.policy.bind(controller.pnet)

    def fingerprint(self) -> Dict[str, Any]:
        fp = dict(self.policy.fingerprint())
        fp["interval"] = self.interval
        return fp

    # --- cadence ------------------------------------------------------------

    def due(self, t: float) -> bool:
        return t >= self.next_tick

    def clamp(self, t_next: float) -> float:
        """Keep barrier strides from jumping past a control instant."""
        return min(t_next, self.next_tick)

    # --- one control cycle --------------------------------------------------

    def tick(
        self, t: float, samples: Dict[int, Dict[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Fold per-shard samples, decide, and partition the applies.

        ``samples`` maps shard -> ``{"plane_cum": ..., "rows": ...}``
        (a worker's ``control_sample`` reply).  Returns shard ->
        ``{"aborts": [gid, ...], "launches": [(gid, FlowSpec), ...]}``
        for every shard that has work.
        """
        plane_cum: Dict[int, float] = {}
        rows: List[Dict[str, Any]] = []
        for shard in sorted(samples):
            reply = samples[shard]
            plane_cum.update(reply["plane_cum"])
            rows.extend(reply["rows"])
        rows.sort(key=lambda row: row["gid"])
        by_gid = {row["gid"]: row for row in rows}

        sample = self.monitor.ingest(
            t, self.interval, self.n_planes, rows, plane_cum=plane_cum
        )
        self.stats.ticks += 1
        decisions = self.policy.decide(sample)
        self.stats.decisions += len(decisions)

        batches: Dict[int, Dict[str, Any]] = {}
        for decision in decisions:
            gid = decision.gid
            row = by_gid.get(gid)
            shard = self.owner.get(gid)
            if row is None or shard is None or gid in self.spanning:
                self.stats.missed += 1
                continue
            paths = self._narrow(shard, decision.paths)
            if not paths:
                self.stats.missed += 1
                continue
            paths = clamp_transport(row["transport"], paths)
            remaining = max(
                int(row["size"]) - int(sum(row["acked"])), 0
            )
            spec = FlowSpec(
                src=row["src"],
                dst=row["dst"],
                size=remaining,
                paths=paths,
                at=t,
                tag=row["tag"],
                transport=row["transport"],
            )
            batch = batches.setdefault(
                shard, {"aborts": [], "launches": []}
            )
            batch["aborts"].append(gid)
            batch["launches"].append((gid, spec))
            self.stats.applied += 1

        self.next_tick += self.interval
        return batches

    def _narrow(self, shard: int, paths) -> List[Tuple[int, Any]]:
        """Restrict a decision's paths to one shard's planes.

        Global flow ids stay pinned to their owning shard (moving the
        live source would need a full cross-shard handoff protocol), so
        a path set that crosses shards keeps only the owning shard's
        slice.  When *no* path lands on the owner, the decision is
        dropped rather than stranding the flow.
        """
        local = [
            (plane, path) for plane, path in paths
            if self.plane_shard.get(plane) == shard
        ]
        if len(local) != len(list(paths)):
            if local:
                self.stats.narrowed += 1
            return local
        return list(paths)

    # --- checkpoint state ---------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Picklable blob for the shard engine checkpoint."""
        return {
            "policy": self.policy,
            "monitor": self.monitor,
            "owner": dict(self.owner),
            "spanning": sorted(self.spanning),
            "next_tick": self.next_tick,
            "stats": self.stats,
        }

    def restore(self, blob: Dict[str, Any]) -> None:
        self.policy = blob["policy"]
        self.monitor = blob["monitor"]
        self.owner = dict(blob["owner"])
        self.spanning = set(blob["spanning"])
        self.next_tick = blob["next_tick"]
        self.stats = blob["stats"]
