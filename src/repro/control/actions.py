"""Engine-agnostic flow resteer actions.

The mechanics of moving a live flow onto new paths, factored out of
:mod:`repro.faults` so "path is slow" (the adaptive control plane) and
"path died" (fault reaction) share one machinery:

* **packet**: abort the flow and relaunch its un-ACKed remainder as a
  fresh :class:`~repro.core.flowspec.FlowSpec` on the new paths -- TCP
  state cannot survive a path change, so the remainder re-probes from
  slow start exactly as a real connection migration would.
* **fluid**: migrate the flow's subflows in place
  (:meth:`~repro.fluid.flowsim.FluidSimulator.migrate_flow`); delivered
  bytes are preserved and the new subflows restart their ramp.

These helpers import only the core spec types (never
``repro.faults`` or ``repro.control.controller``), so both layers --
and the shard workers -- can call them without import cycles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.flowspec import FlowSpec
from repro.core.pnet import PlanePath


def remaining_bytes(source, spec: FlowSpec) -> int:
    """Un-ACKed bytes of a live packet-engine flow (never negative)."""
    acked = getattr(source, "acked_bytes", None)
    if acked is None:
        acked = source.snd_una
    return max(int(spec.size) - int(acked), 0)


def clamp_transport(
    transport: str, paths: Sequence[PlanePath]
) -> List[PlanePath]:
    """Truncate a path set to what the transport can actually drive.

    DCTCP here is single-path: a relaunch onto several paths would
    silently upgrade it to MPTCP, so it keeps only the first.
    """
    paths = list(paths)
    if transport == "dctcp" and len(paths) > 1:
        return paths[:1]
    return paths


def relaunch_spec(
    spec: FlowSpec,
    remaining: int,
    paths: Sequence[PlanePath],
    now: float,
) -> FlowSpec:
    """The spec that re-launches a flow's remainder on new paths."""
    return FlowSpec(
        src=spec.src,
        dst=spec.dst,
        size=remaining,
        paths=clamp_transport(spec.transport, paths),
        at=now,
        tag=spec.tag,
        transport=spec.transport,
        on_complete=spec.on_complete,
    )


def abort_and_relaunch(
    net, flow_id: int, source, spec: FlowSpec,
    new_paths: Sequence[PlanePath], now: float,
):
    """Packet resteer: abort ``flow_id`` and relaunch its remainder.

    Returns the new source object, or ``None`` when ``new_paths`` is
    empty -- the flow is aborted and stranded (the caller counts it).
    The relaunched flow gets a fresh flow id from the network; callers
    that track flows by id must re-key (serial ids are not stable
    across a resteer; the shard engine keeps global ids stable by
    re-mapping inside the worker).
    """
    remaining = remaining_bytes(source, spec)
    net.abort_flow(flow_id)
    if not new_paths:
        return None
    return net.add_flow(spec=relaunch_spec(spec, remaining, new_paths, now))


def migrate(sim, flow_id: int, new_paths: Sequence[PlanePath]) -> bool:
    """Fluid resteer: move the flow's subflows in place.

    Returns False when the flow is no longer active (it completed
    between the decision and the apply).
    """
    return sim.migrate_flow(flow_id, new_paths)


def same_paths(a: Sequence[PlanePath], b: Sequence[PlanePath]) -> bool:
    """Whether two selections name the same (plane, path) sets."""
    canon = lambda paths: sorted(  # noqa: E731
        (plane, tuple(p)) for plane, p in paths
    )
    return canon(a) == canon(b)
