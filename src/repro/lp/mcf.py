"""Path-based maximum-concurrent-flow LP.

Given a traffic matrix (a set of commodities with demands) and, for each
commodity, the set of paths its routing scheme allows it to use, find the
largest common scale factor ``alpha`` such that every commodity can ship
``alpha * demand`` simultaneously without exceeding any link capacity.

This is exactly how the paper measures "ideal throughput with computed
routes" (section 5.1.1): the routes come from ECMP or K-shortest-paths, and
the LP finds the best rate allocation over them.  Normalising the resulting
``alpha`` against the serial low-bandwidth network's gives the y-axis of
Figures 6 and 8.

Formulation (variables ``x_p >= 0`` per path, plus ``alpha``)::

    maximise   alpha
    s.t.       sum_{p in P_i} x_p  =  alpha * d_i      for each commodity i
               sum_{p uses e} x_p  <= c(e)             for each directed link e

Paths may live on different dataplanes of a P-Net; each path is tagged
with its plane so link usage is accounted against the right plane's
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.obs import get_registry
from repro.topology.graph import Topology

#: A path tagged with the dataplane it lives on: (plane_index, node list).
PlanePath = Tuple[int, List[str]]


@dataclass
class Commodity:
    """One src->dst demand restricted to an explicit set of paths."""

    src: str
    dst: str
    paths: List[PlanePath]
    demand: float = 1.0

    def __post_init__(self):
        if self.demand <= 0:
            raise ValueError(f"demand must be positive, got {self.demand}")
        if not self.paths:
            raise ValueError(f"commodity {self.src}->{self.dst} has no paths")
        for plane_idx, path in self.paths:
            if path[0] != self.src or path[-1] != self.dst:
                raise ValueError(
                    f"path {path} does not connect {self.src}->{self.dst}"
                )


@dataclass
class McfResult:
    """Solution of a max-concurrent-flow instance.

    Attributes:
        alpha: the common throughput scale factor (bits/s per unit demand).
        total_throughput: sum over commodities of ``alpha * demand``.
        path_rates: per-commodity list of per-path rates (bits/s), aligned
            with each commodity's ``paths`` list.
    """

    alpha: float
    total_throughput: float
    path_rates: List[List[float]] = field(repr=False)


def _directed_link_index(
    planes: Sequence[Topology],
) -> Tuple[Dict[Tuple[int, str, str], int], np.ndarray]:
    """Map (plane, u, v) directed links to column indices + capacities."""
    index: Dict[Tuple[int, str, str], int] = {}
    caps: List[float] = []
    for plane_idx, plane in enumerate(planes):
        for link in plane.live_links:
            for u, v in ((link.u, link.v), (link.v, link.u)):
                index[(plane_idx, u, v)] = len(caps)
                caps.append(link.capacity)
    return index, np.asarray(caps)


def max_concurrent_flow(
    planes: Sequence[Topology],
    commodities: Sequence[Commodity],
    objective: str = "concurrent",
) -> McfResult:
    """Solve the path-based throughput LP.

    Args:
        planes: the dataplanes the paths refer to (a single-element list
            for a serial network).
        commodities: demands with their allowed paths.
        objective: ``"concurrent"`` maximises the common scale factor
            (the paper's metric); ``"total"`` maximises total throughput
            with no fairness coupling (useful for ablations -- it lets the
            LP starve badly-placed commodities).

    Returns:
        An :class:`McfResult`.

    Raises:
        ValueError: on unknown objective, empty commodities, or a path
            referencing a missing/failed link.
    """
    if not commodities:
        raise ValueError("need at least one commodity")
    if objective not in ("concurrent", "total"):
        raise ValueError(f"unknown objective {objective!r}")

    link_index, capacities = _directed_link_index(planes)
    n_links = len(capacities)

    # Column layout: one x_p per (commodity, path), then alpha last
    # (alpha only exists for the concurrent objective).
    n_paths_total = sum(len(c.paths) for c in commodities)
    has_alpha = objective == "concurrent"
    n_vars = n_paths_total + (1 if has_alpha else 0)
    alpha_col = n_paths_total

    # Capacity rows: A_ub x <= capacities.
    ub_rows: List[int] = []
    ub_cols: List[int] = []
    ub_data: List[float] = []

    # Demand rows (concurrent): sum x_p - alpha d_i = 0.
    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_data: List[float] = []

    col = 0
    for i, commodity in enumerate(commodities):
        for plane_idx, path in commodity.paths:
            for u, v in zip(path, path[1:]):
                try:
                    link_col = link_index[(plane_idx, u, v)]
                except KeyError:
                    raise ValueError(
                        f"path edge {u}->{v} not a live link of plane "
                        f"{plane_idx}"
                    ) from None
                ub_rows.append(link_col)
                ub_cols.append(col)
                ub_data.append(1.0)
            if has_alpha:
                eq_rows.append(i)
                eq_cols.append(col)
                eq_data.append(1.0)
            col += 1
        if has_alpha:
            eq_rows.append(i)
            eq_cols.append(alpha_col)
            eq_data.append(-commodity.demand)

    # Keep only links some path actually uses: all-zero rows are vacuous
    # and have been observed to confuse HiGHS' presolve at scale.
    used_links = sorted(set(ub_rows))
    row_map = {old: new for new, old in enumerate(used_links)}
    ub_rows = [row_map[r] for r in ub_rows]
    capacities = capacities[used_links]

    a_ub = sparse.coo_matrix(
        (ub_data, (ub_rows, ub_cols)), shape=(len(used_links), n_vars)
    ).tocsr()

    # Normalise capacities to O(1): HiGHS mis-converges on some instances
    # when right-hand sides are ~1e11 (100 Gb/s in bits/s).  Rates scale
    # back by cap_scale after the solve.
    cap_scale = float(capacities.max()) if len(capacities) else 1.0
    if cap_scale <= 0:
        cap_scale = 1.0

    c = np.zeros(n_vars)
    if has_alpha:
        c[alpha_col] = -1.0
        a_eq = sparse.coo_matrix(
            (eq_data, (eq_rows, eq_cols)), shape=(len(commodities), n_vars)
        ).tocsr()
        b_eq = np.zeros(len(commodities))
    else:
        c[:n_paths_total] = -1.0
        a_eq = None
        b_eq = None

    obs = get_registry()
    with obs.timer("lp.solve_seconds", objective=objective):
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=capacities / cap_scale,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs",
        )
    if obs.enabled:
        obs.counter("lp.solves", objective=objective).inc()
        obs.gauge("lp.variables").max(n_vars)
        obs.gauge("lp.constraints").max(
            len(used_links) + (len(commodities) if has_alpha else 0)
        )
    if not result.success:
        raise RuntimeError(f"LP solve failed: {result.message}")

    x = result.x * cap_scale
    path_rates: List[List[float]] = []
    col = 0
    for commodity in commodities:
        rates = [float(x[col + j]) for j in range(len(commodity.paths))]
        path_rates.append(rates)
        col += len(commodity.paths)

    if has_alpha:
        alpha = float(x[alpha_col])
        total = alpha * sum(c_.demand for c_ in commodities)
    else:
        total = float(sum(sum(r) for r in path_rates))
        # For the total objective report the worst per-unit-demand rate.
        alpha = min(
            sum(r) / c_.demand for r, c_ in zip(path_rates, commodities)
        )
    return McfResult(alpha=alpha, total_throughput=total, path_rates=path_rates)
