"""Linear-programming throughput solvers.

The paper uses Gurobi to measure "ideal throughput" of a traffic matrix,
either with flows constrained to computed routes (ECMP / KSP) or with no
path constraint at all.  This package provides the same two formulations on
``scipy.optimize.linprog`` (HiGHS):

* :mod:`repro.lp.mcf` -- path-based maximum concurrent flow.
* :mod:`repro.lp.ideal` -- edge-based multicommodity flow (no path
  constraint), used for Figure 7.
"""

from repro.lp.mcf import Commodity, McfResult, max_concurrent_flow
from repro.lp.ideal import ideal_throughput, merge_parallel_with_rack_sources

__all__ = [
    "Commodity",
    "McfResult",
    "max_concurrent_flow",
    "ideal_throughput",
    "merge_parallel_with_rack_sources",
]
