"""Edge-based multicommodity-flow LP: throughput with no path constraint.

This measures "the total capacity of the network core" (section 5.1.1,
Figure 7): the best any routing scheme could possibly do.  Flows may split
arbitrarily over the whole fabric, so we use an edge-flow formulation with
commodities aggregated by source (one flow variable per source group and
directed edge), which keeps the LP polynomial in network size::

    maximise  alpha
    s.t.      conservation:  for each source s, node v != s:
                  inflow_s(v) - outflow_s(v) = alpha * demand(s, v)
              capacity:      sum_s flow_s(e) <= c(e)   for each directed e

For a P-Net, the planes are merged into one graph whose switch names are
prefixed per plane; the hosts (or virtual rack nodes) are the only shared
nodes, which encodes exactly the architecture's constraint that traffic
picks a plane at the edge and stays in it.

Figure 7 runs *rack-level* traffic: :func:`merge_parallel_with_rack_sources`
adds a virtual rack node per ToR index, attached to its ToR in every plane
by an effectively-unconstrained link, so the measured bottleneck is the
network core -- matching the paper's setup.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.topology.graph import HOST, TOR, Topology


def merge_parallel(planes: Sequence[Topology], name: str = "merged") -> Topology:
    """Union of dataplanes sharing host nodes; switches get plane prefixes."""
    merged = Topology(name)
    for plane_idx, plane in enumerate(planes):
        prefix = f"p{plane_idx}:"
        for node in plane.nodes:
            kind = plane.kind(node)
            merged.add_node(node if kind == HOST else prefix + node, kind)
        for link in plane.live_links:
            ends = []
            for end in (link.u, link.v):
                kind = plane.kind(end)
                ends.append(end if kind == HOST else prefix + end)
            merged.add_link(ends[0], ends[1], link.capacity, link.propagation)
    return merged


def merge_parallel_with_rack_sources(
    planes: Sequence[Topology],
    name: str = "merged-racks",
    rack_link_capacity: Optional[float] = None,
) -> Tuple[Topology, List[str]]:
    """Merge planes and attach one virtual rack node per ToR index.

    Every plane must have the same ToR name set (true for homogeneous
    *and* heterogeneous constructions from this repo's builders, which
    name switches ``t0..``).  Rack node ``r{i}`` connects to ``t{i}`` in
    each plane with a link big enough never to bottleneck.

    Returns:
        (merged topology, list of rack node names).
    """
    tor_sets = [set(p.nodes_of_kind(TOR)) for p in planes]
    for other in tor_sets[1:]:
        if other != tor_sets[0]:
            raise ValueError("planes must share ToR names for rack sources")
    merged = merge_parallel(planes, name=name)
    if rack_link_capacity is None:
        # Larger than the sum of any plane's core capacity: never binding.
        rack_link_capacity = 1e6 * max(
            link.capacity for plane in planes for link in plane.links
        )
    racks = []
    for tor in sorted(tor_sets[0], key=lambda t: int(t[1:])):
        rack = f"r{tor[1:]}"
        merged.add_node(rack, HOST)
        for plane_idx in range(len(planes)):
            merged.add_link(rack, f"p{plane_idx}:{tor}", rack_link_capacity)
        racks.append(rack)
    return merged, racks


def ideal_throughput(
    topo: Topology,
    demands: Dict[Tuple[str, str], float],
) -> float:
    """Maximum concurrent throughput scale ``alpha`` with free routing.

    Args:
        topo: the (possibly merged multi-plane) network.
        demands: map (src, dst) -> demand.  ``alpha * demand`` is shipped
            for every pair at the optimum.

    Returns:
        The optimal ``alpha`` (bits/s per unit demand).
    """
    if not demands:
        raise ValueError("need at least one demand")
    for (src, dst), demand in demands.items():
        if src == dst:
            raise ValueError(f"self-demand {src}->{dst}")
        if demand <= 0:
            raise ValueError(f"demand must be positive: {src}->{dst}")
        for node in (src, dst):
            if node not in topo:
                raise KeyError(f"unknown node {node!r}")

    nodes = sorted(topo.nodes)
    node_idx = {n: i for i, n in enumerate(nodes)}
    n_nodes = len(nodes)

    directed: List[Tuple[int, int]] = []
    caps: List[float] = []
    for link in topo.live_links:
        u, v = node_idx[link.u], node_idx[link.v]
        directed.append((u, v))
        caps.append(link.capacity)
        directed.append((v, u))
        caps.append(link.capacity)
    n_edges = len(directed)
    capacities = np.asarray(caps)

    sources = sorted({src for src, __ in demands})
    src_pos = {s: i for i, s in enumerate(sources)}
    n_sources = len(sources)

    # Demand matrix: out_demand[s][v] = demand(s, v).
    out_demand: List[Dict[int, float]] = [dict() for __ in sources]
    for (src, dst), demand in demands.items():
        out_demand[src_pos[src]][node_idx[dst]] = (
            out_demand[src_pos[src]].get(node_idx[dst], 0.0) + demand
        )

    # Variables: f[s, e] for s in sources, e in directed edges; then alpha.
    n_vars = n_sources * n_edges + 1
    alpha_col = n_vars - 1

    eq_rows: List[int] = []
    eq_cols: List[int] = []
    eq_data: List[float] = []
    row = 0
    for s_i, source in enumerate(sources):
        s_node = node_idx[source]
        base = s_i * n_edges
        # Conservation at every node except the source itself.
        # Row index for node v in this block:
        node_row = {}
        for v in range(n_nodes):
            if v == s_node:
                continue
            node_row[v] = row
            demand = out_demand[s_i].get(v, 0.0)
            if demand:
                eq_rows.append(row)
                eq_cols.append(alpha_col)
                eq_data.append(-demand)
            row += 1
        for e_i, (u, v) in enumerate(directed):
            if v != s_node:
                eq_rows.append(node_row[v])
                eq_cols.append(base + e_i)
                eq_data.append(1.0)  # inflow at v
            if u != s_node:
                eq_rows.append(node_row[u])
                eq_cols.append(base + e_i)
                eq_data.append(-1.0)  # outflow at u
    n_eq = row

    a_eq = sparse.coo_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(n_eq, n_vars)
    ).tocsr()
    b_eq = np.zeros(n_eq)

    # Capacity: sum_s f[s, e] <= cap(e).
    ub_rows = []
    ub_cols = []
    for s_i in range(n_sources):
        base = s_i * n_edges
        for e_i in range(n_edges):
            ub_rows.append(e_i)
            ub_cols.append(base + e_i)
    a_ub = sparse.coo_matrix(
        (np.ones(len(ub_rows)), (ub_rows, ub_cols)), shape=(n_edges, n_vars)
    ).tocsr()

    c = np.zeros(n_vars)
    c[alpha_col] = -1.0

    # Normalise capacities to O(1) for HiGHS conditioning (see mcf.py).
    cap_scale = float(capacities.max()) if n_edges else 1.0
    if cap_scale <= 0:
        cap_scale = 1.0
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=capacities / cap_scale,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"ideal LP solve failed: {result.message}")
    return float(result.x[alpha_col]) * cap_scale
