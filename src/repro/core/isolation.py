"""Strict performance isolation by pinning traffic classes to planes.

Paper section 7: "Because P-Net has multiple isolated dataplanes,
operators can assign different traffic classes to different dataplanes to
achieve performance isolation" -- user-facing frontend traffic on one
plane, background analytics on another, tenants on disjoint planes.
Since planes share no links, the isolation is absolute: no QoS, no
queues shared, no interference.

:class:`PlaneAllocator` owns the class->planes mapping and hands out
policies restricted to each class's planes.  Restriction works for any
policy here because these operate on a *view* PNet containing only the
allowed planes (path indices are translated back to the real plane ids).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.core.path_selection import (
    EcmpPolicy,
    KspMultipathPolicy,
    MinHopPlanePolicy,
    PathSelectionPolicy,
    RoundRobinPlanePolicy,
)
from repro.core.pnet import PlanePath, PNet


class RestrictedPolicy:
    """A policy whose selections are confined to a subset of planes."""

    def __init__(
        self,
        pnet: PNet,
        planes: Sequence[int],
        policy_cls: Type[PathSelectionPolicy],
        **policy_kwargs,
    ):
        if not planes:
            raise ValueError("need at least one allowed plane")
        for idx in planes:
            if not 0 <= idx < pnet.n_planes:
                raise IndexError(f"no plane {idx} in {pnet.name}")
        if len(set(planes)) != len(planes):
            raise ValueError("duplicate plane indices")
        self.real_planes = list(planes)
        self._view = PNet(
            [pnet.plane(i) for i in planes],
            name=f"{pnet.name}/view{list(planes)}",
        )
        self.policy = policy_cls(self._view, **policy_kwargs)

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        """Select paths, translating view plane ids to real ones."""
        return [
            (self.real_planes[view_idx], path)
            for view_idx, path in self.policy.select(src, dst, flow_id)
        ]


class PlaneAllocator:
    """Assign traffic classes to disjoint (or overlapping) plane subsets.

    Example::

        alloc = PlaneAllocator(pnet)
        alloc.assign("frontend", [0])          # user-facing: plane 0 only
        alloc.assign("analytics", [1, 2, 3])   # bulk: the rest
        policy = alloc.policy("analytics", KspMultipathPolicy, k=24)
    """

    def __init__(self, pnet: PNet):
        self.pnet = pnet
        self._classes: Dict[str, List[int]] = {}

    def assign(
        self,
        traffic_class: str,
        planes: Sequence[int],
        exclusive: bool = False,
    ) -> None:
        """Map a class onto planes.

        Args:
            exclusive: refuse the assignment if any plane is already held
                by another class (strict tenant isolation).
        """
        planes = list(planes)
        if not planes:
            raise ValueError("need at least one plane")
        for idx in planes:
            if not 0 <= idx < self.pnet.n_planes:
                raise IndexError(f"no plane {idx}")
        if exclusive:
            for other, held in self._classes.items():
                if other == traffic_class:
                    continue
                overlap = set(held) & set(planes)
                if overlap:
                    raise ValueError(
                        f"planes {sorted(overlap)} already assigned to "
                        f"{other!r}"
                    )
        self._classes[traffic_class] = planes

    def planes_of(self, traffic_class: str) -> List[int]:
        try:
            return list(self._classes[traffic_class])
        except KeyError:
            raise KeyError(f"unknown traffic class {traffic_class!r}") from None

    @property
    def classes(self) -> List[str]:
        return list(self._classes)

    def is_isolated(self, class_a: str, class_b: str) -> bool:
        """Whether two classes can never share a queue."""
        return not (
            set(self.planes_of(class_a)) & set(self.planes_of(class_b))
        )

    def policy(
        self,
        traffic_class: str,
        policy_cls: Type[PathSelectionPolicy] = EcmpPolicy,
        **policy_kwargs,
    ) -> RestrictedPolicy:
        """A path-selection policy confined to the class's planes."""
        return RestrictedPolicy(
            self.pnet,
            self.planes_of(traffic_class),
            policy_cls,
            **policy_kwargs,
        )
