"""Flow-size-based transport selection (paper section 5.1.2).

The paper's empirical finding: flows up to ~100 MB gain little from MPTCP
(it is slow to probe subflow bandwidth at small time scales, and can hurt
really small flows), while flows of ~1 GB and beyond gain a lot.  The
recommended host policy is therefore:

* size <= ``single_path_threshold`` (100 MB)  ->  single-path routing;
* size >= ``multipath_threshold``   (1 GB)    ->  K-way MPTCP;
* sizes in between default to single-path (conservative, per the paper's
  observation that 100 MB flows "benefit less from multipath").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, MB


@dataclass(frozen=True)
class SizeThresholdPolicy:
    """Decide single-path vs multipath from the flow size.

    Attributes:
        single_path_threshold: bytes at or below which a flow uses a
            single path (paper default: 100 MB).
        multipath_threshold: bytes at or above which a flow uses MPTCP
            (paper default: 1 GB).
        prefer_multipath_between: what to do in the open interval between
            the thresholds (paper leans single-path).
    """

    single_path_threshold: float = 100 * MB
    multipath_threshold: float = 1 * GB
    prefer_multipath_between: bool = False

    def __post_init__(self):
        if self.single_path_threshold <= 0:
            raise ValueError("single_path_threshold must be positive")
        if self.multipath_threshold < self.single_path_threshold:
            raise ValueError(
                "multipath_threshold must be >= single_path_threshold"
            )

    def use_multipath(self, flow_bytes: float) -> bool:
        """True if a flow of this size should open multiple subflows."""
        if flow_bytes < 0:
            raise ValueError(f"flow size must be >= 0, got {flow_bytes}")
        if flow_bytes <= self.single_path_threshold:
            return False
        if flow_bytes >= self.multipath_threshold:
            return True
        return self.prefer_multipath_between

    def subflow_count(self, flow_bytes: float, n_planes: int) -> int:
        """Recommended subflow count: K = 8 * N for bulk, 1 otherwise.

        Section 5.1.1: "P-Nets with N dataplanes need N times as many
        subflows" as the 8 that saturate a serial network.
        """
        if n_planes < 1:
            raise ValueError(f"n_planes must be >= 1, got {n_planes}")
        return 8 * n_planes if self.use_multipath(flow_bytes) else 1
