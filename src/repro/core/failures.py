"""Failure detection and graceful fail-over (paper sections 3.4 and 5.4).

P-Net hosts "can quickly detect individual dataplane failures via link
status and avoid using the broken dataplane(s), allowing graceful
performance degradation".  Two layers are modelled:

* **Uplink failure detection** -- a host notices its own NIC port losing
  link (its host--ToR link failing) and stops using that plane entirely.
* **In-plane disconnection** -- deeper failures (switch--switch links) are
  discovered by routing; :class:`FailureAwareSelector` re-invokes the
  wrapped policy with a different flow salt until it finds a selection
  whose paths are all live, falling back to any live plane's shortest
  path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.path_selection import PathSelectionPolicy
from repro.core.pnet import PlanePath, PNet


def detect_failed_uplinks(pnet: PNet, host: str) -> List[int]:
    """Planes whose host uplink has lost link status (NIC-visible)."""
    down = []
    for idx, plane in enumerate(pnet.planes):
        if not any(True for __ in plane.neighbor_links(host)):
            down.append(idx)
    return down


def path_is_live(pnet: PNet, plane_path: PlanePath) -> bool:
    """Whether every hop of a tagged path is currently a live link."""
    plane_idx, path = plane_path
    plane = pnet.plane(plane_idx)
    for u, v in zip(path, path[1:]):
        if not plane.has_link(u, v) or plane.is_failed(u, v):
            return False
    return True


class FailureAwareSelector:
    """Wrap a policy with link-status fail-over.

    The wrapped policy's choice is used verbatim when all its paths are
    live.  Dead paths are dropped; if nothing survives, the selector
    falls back to a shortest path in any plane that still connects the
    pair (graceful degradation), or returns [] when fully partitioned.

    Note: policies memoise routing state, so after changing failures call
    :meth:`PNet.invalidate_routing` (and rebuild or re-wrap policies that
    keep private caches) to model routing reconvergence.
    """

    def __init__(self, policy: PathSelectionPolicy, max_retries: int = 4):
        self.policy = policy
        self.pnet = policy.pnet
        self.max_retries = max_retries

    def invalidate(self) -> None:
        """Flush the wrapped policy's private memos (topology changed)."""
        self.policy.invalidate()

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        choice = self.policy.select(src, dst, flow_id)
        live = [pp for pp in choice if path_is_live(self.pnet, pp)]
        if live:
            return live
        # Retry the policy under different flow ids: hashed policies then
        # land on different planes/paths, modelling a host re-picking
        # after an unreachable destination.
        for attempt in range(1, self.max_retries + 1):
            retry = self.policy.select(
                src, dst, flow_id + attempt * 0x9E3779B9
            )
            live = [pp for pp in retry if path_is_live(self.pnet, pp)]
            if live:
                return live
        # Last resort: shortest path on any plane that still connects.
        for plane_idx in self.pnet.live_planes(src, dst):
            options = self.pnet.shortest_paths(plane_idx, src, dst)
            if options:
                return [(plane_idx, options[0])]
        return []
