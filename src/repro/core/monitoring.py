"""Cross-dataplane monitoring and diagnostics (paper section 7).

"Existing systems will need to merge flow statistics from multiple
dataplanes to accurately describe the network state."  This module is
that merge layer: it ingests per-flow records from either simulator and
per-queue counters from the packet simulator, attributes them to planes,
and answers the operator questions the paper raises -- per-plane load
balance, loss concentration, and misbehaving-plane detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.sim.network import PacketNetwork


@dataclass
class PlaneStats:
    """Aggregated view of one dataplane."""

    plane: int
    flows: int = 0
    bytes_carried: float = 0.0
    packets_forwarded: int = 0
    drops: int = 0
    fcts: List[float] = field(default_factory=list)

    @property
    def loss_fraction(self) -> float:
        total = self.packets_forwarded + self.drops
        return self.drops / total if total else 0.0

    def fct_summary(self) -> Optional[Summary]:
        return summarize(self.fcts) if self.fcts else None


class NetworkMonitor:
    """Merge per-plane statistics into a whole-fabric view.

    Flow records don't carry plane ids directly (an MPTCP flow spans
    several), so callers register each flow's plane usage when launching
    it -- exactly what a P-Net host agent, which chose the planes, can do.
    """

    def __init__(self, n_planes: int):
        if n_planes < 1:
            raise ValueError("need at least one plane")
        self.stats = {i: PlaneStats(plane=i) for i in range(n_planes)}

    # --- constructors -------------------------------------------------------

    @classmethod
    def from_network(
        cls, network: PacketNetwork, n_planes: Optional[int] = None
    ) -> "NetworkMonitor":
        """Monitor built from a finished packet simulation.

        Flow records carry their plane usage (``SimFlowRecord.planes``),
        so no manual per-flow registration is needed: this ingests every
        completed flow plus the per-queue counters in one call.
        """
        monitor = cls(n_planes if n_planes is not None else len(network.planes))
        monitor.ingest_network(network)
        return monitor

    @classmethod
    def from_registry(cls, registry, n_planes: int) -> "NetworkMonitor":
        """Monitor built from a :class:`repro.obs.Registry`'s per-plane
        series (``net.flows``, ``net.flow.bytes``, ``net.fct_seconds``,
        ``sim.plane.*``) -- the merge the paper's section 7 asks for,
        from telemetry alone."""
        monitor = cls(n_planes)
        monitor.ingest_registry(registry)
        return monitor

    # --- ingestion ----------------------------------------------------------

    def ingest_network(self, network: PacketNetwork) -> None:
        """Ingest all flow records and queue counters of a simulation."""
        for record in network.records:
            self.record_flow(record.planes, record.size, record.fct)
        self.ingest_queue_counters(network)

    def ingest_registry(self, registry) -> None:
        """Merge a registry's per-plane series into this monitor."""
        for plane, stats in self.stats.items():
            stats.flows += int(registry.value("net.flows", plane=plane))
            stats.bytes_carried += registry.value("net.flow.bytes", plane=plane)
            stats.packets_forwarded += int(
                registry.value("sim.plane.packets_forwarded", plane=plane)
            )
            stats.drops += int(registry.value("sim.plane.drops", plane=plane))
            stats.fcts.extend(registry.samples("net.fct_seconds", plane=plane))

    def record_flow(
        self,
        planes: Sequence[int],
        size: float,
        fct: float,
    ) -> None:
        """Attribute one completed flow to the planes it used.

        Bytes are split evenly across planes (the host agent may pass
        one entry per subflow for exact accounting).
        """
        if not planes:
            raise ValueError("flow must have used at least one plane")
        share = size / len(planes)
        for plane in planes:
            stats = self.stats[plane]
            stats.flows += 1
            stats.bytes_carried += share
            stats.fcts.append(fct)

    def ingest_queue_counters(self, network: PacketNetwork) -> None:
        """Pull per-queue forward/drop counters from a packet simulation.

        Queue names are ``p{plane}:{u}->{v}``, so attribution is direct.
        """
        for name, (forwarded, drops) in network.queue_stats().items():
            plane = int(name.split(":", 1)[0][1:])
            self.stats[plane].packets_forwarded += forwarded
            self.stats[plane].drops += drops

    # --- diagnostics ----------------------------------------------------------

    def load_imbalance(self) -> float:
        """Max/mean bytes across planes (1.0 = perfectly balanced)."""
        loads = [s.bytes_carried for s in self.stats.values()]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def suspect_planes(
        self,
        loss_threshold: float = 0.01,
        fct_factor: float = 2.0,
        baseline: Optional["NetworkMonitor"] = None,
    ) -> List[int]:
        """Planes that look unhealthy.

        A plane is suspect if its loss fraction exceeds ``loss_threshold``
        or its median FCT exceeds ``fct_factor`` times a reference:

        * with a ``baseline`` monitor (a previous healthy measurement of
          the *same* probe workload), each plane is compared against its
          own baseline median -- robust when heterogeneous planes have
          different natural path lengths;
        * without one, planes are compared against the best plane's
          median, which assumes comparable plane topologies.
        """
        suspects = set()
        medians = {}
        for plane, stats in self.stats.items():
            if stats.loss_fraction > loss_threshold:
                suspects.add(plane)
            summary = stats.fct_summary()
            if summary is not None:
                medians[plane] = summary.median
        if baseline is not None:
            for plane, median in medians.items():
                reference = baseline.stats[plane].fct_summary()
                if reference is not None and reference.median > 0:
                    if median > fct_factor * reference.median:
                        suspects.add(plane)
        elif medians:
            best = min(medians.values())
            if best > 0:
                for plane, median in medians.items():
                    if median > fct_factor * best:
                        suspects.add(plane)
        return sorted(suspects)

    def report(self) -> str:
        """Human-readable per-plane summary."""
        lines = ["plane  flows  bytes         loss      median FCT"]
        for plane, stats in sorted(self.stats.items()):
            summary = stats.fct_summary()
            fct = f"{summary.median * 1e6:9.1f}us" if summary else "      n/a"
            lines.append(
                f"{plane:>5}  {stats.flows:>5}  {stats.bytes_carried:>12.3e}"
                f"  {stats.loss_fraction:>7.4f}  {fct}"
            )
        return "\n".join(lines)
