"""DARD-style adaptive end-host routing (paper section 3.4).

"End-host routing solutions provide OS direct access to routing
information and can facilitate better flow placement decisions in P-Net"
-- the paper names DARD [44], where each host selfishly moves its flows
to the path with the most available bandwidth, converging without any
central controller.

:class:`AdaptiveRouter` implements that control loop on the fluid
simulator: every ``epoch`` it inspects each tracked flow, estimates the
bottleneck headroom of the flow's candidate paths (the K shortest pooled
across planes), and migrates the flow when some candidate offers at
least ``hysteresis`` times the flow's current rate in *headroom* --
DARD's improvement test, which provably avoids oscillation for
hysteresis > 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.path_selection import KspMultipathPolicy
from repro.core.pnet import PlanePath, PNet
from repro.fluid.flowsim import FluidSimulator


class AdaptiveRouter:
    """Per-host selfish flow re-placement over a P-Net's paths.

    Args:
        sim: the fluid simulator carrying the flows.
        pnet: the network (supplies candidate paths).
        candidates: candidate paths per pair (default: 4 per plane).
        epoch: control period in seconds (DARD uses O(100 ms); datacenter
            RTTs here are microseconds so the default is 1 ms).
        hysteresis: migrate only if a candidate's headroom exceeds the
            flow's current rate by this factor (> 1 prevents oscillation).
    """

    def __init__(
        self,
        sim: FluidSimulator,
        pnet: PNet,
        candidates: Optional[int] = None,
        epoch: float = 1e-3,
        hysteresis: float = 1.2,
    ):
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if hysteresis <= 1.0:
            raise ValueError("hysteresis must be > 1 to avoid oscillation")
        self.sim = sim
        self.pnet = pnet
        self.epoch = epoch
        self.hysteresis = hysteresis
        k = candidates if candidates is not None else 4 * pnet.n_planes
        self._policy = KspMultipathPolicy(pnet, k=k, seed=97)
        #: flow_id -> (src, dst, current path)
        self._flows: Dict[int, tuple] = {}
        self.migrations = 0
        self._running = False

    # --- flow registration ------------------------------------------------

    def track(self, flow_id: int, src: str, dst: str,
              path: PlanePath) -> None:
        """Register a (single-path) flow for adaptive re-placement."""
        self._flows[flow_id] = (src, dst, path)

    def untrack(self, flow_id: int) -> None:
        self._flows.pop(flow_id, None)

    # --- control loop ----------------------------------------------------------

    def start(self, at: Optional[float] = None) -> None:
        """Begin the periodic control loop (stops when nothing is active)."""
        if self._running:
            return
        self._running = True
        first = self.sim.now + self.epoch if at is None else at
        self.sim.schedule(first, self._tick)

    def _tick(self) -> None:
        active_ids = {fid for fid, *__ in self.sim.active_flows()}
        for flow_id in list(self._flows):
            if flow_id not in active_ids:
                self.untrack(flow_id)
        for flow_id, (src, dst, current) in list(self._flows.items()):
            self._consider(flow_id, src, dst, current)
        # Keep ticking while there is anything left to manage.
        if self._flows:
            self.sim.schedule(self.sim.now + self.epoch, self._tick)
        else:
            self._running = False

    def _consider(self, flow_id: int, src: str, dst: str,
                  current: PlanePath) -> None:
        rate = self.sim.flow_rate(flow_id)
        if rate is None:
            self.untrack(flow_id)
            return
        best_path = None
        best_headroom = rate * self.hysteresis
        for candidate in self._policy.select(src, dst, flow_id):
            if candidate == current:
                continue
            headroom = self.sim.path_available_bandwidth(
                candidate, exclude_flow=flow_id
            )
            if headroom > best_headroom:
                best_headroom = headroom
                best_path = candidate
        if best_path is not None:
            if self.sim.migrate_flow(flow_id, [best_path]):
                self._flows[flow_id] = (src, dst, best_path)
                self.migrations += 1
