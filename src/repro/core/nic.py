"""Multi-channel NIC model (paper section 6.3).

A P-Net host needs one uplink *channel* per dataplane, but not
necessarily one physical *port*: "single-port-multi-channel NICs like the
HPE 4x25Gb 1-port 620QSFP28 adapter" carry several channels over one
cable.  The trade-off the paper names: fewer physical ports cost less and
wire more simply, but one port (or its cable) failing takes down every
plane riding it -- "operators can balance between ToR redundancy and cost
by varying the number of physical uplinks."

:class:`NicConfig` describes the port->channels mapping;
:class:`HostNic` tracks port state for one host and translates port
failures into per-plane availability (feeding the same fail-over path as
link failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.pnet import PNet


@dataclass(frozen=True)
class NicConfig:
    """How a host's plane channels map onto physical ports.

    Attributes:
        n_planes: channels needed (one per dataplane).
        ports: number of physical ports; must divide ``n_planes``.
    """

    n_planes: int
    ports: int

    def __post_init__(self):
        if self.n_planes < 1 or self.ports < 1:
            raise ValueError("n_planes and ports must be >= 1")
        if self.ports > self.n_planes:
            raise ValueError(
                f"{self.ports} ports for {self.n_planes} planes: a port "
                "must carry at least one channel"
            )
        if self.n_planes % self.ports:
            raise ValueError(
                f"{self.n_planes} planes do not split evenly over "
                f"{self.ports} ports"
            )

    @property
    def channels_per_port(self) -> int:
        return self.n_planes // self.ports

    def port_of_plane(self, plane_idx: int) -> int:
        """Which physical port carries the channel for ``plane_idx``."""
        if not 0 <= plane_idx < self.n_planes:
            raise IndexError(f"no plane {plane_idx}")
        return plane_idx // self.channels_per_port

    def planes_of_port(self, port: int) -> List[int]:
        if not 0 <= port < self.ports:
            raise IndexError(f"no port {port}")
        width = self.channels_per_port
        return list(range(port * width, (port + 1) * width))


class HostNic:
    """Port state for one host, applied to the underlying topology.

    Failing a port fails the host's uplink in every plane the port
    carries (callers should then call :meth:`PNet.invalidate_routing`,
    as after any failure).

    Pass the running simulator as ``network`` (a
    :class:`~repro.sim.network.PacketNetwork` or
    :class:`~repro.fluid.flowsim.FluidSimulator`) and port transitions
    go through its ``fail_link``/``restore_link``, keeping simulator
    state (packet queues, fluid capacities) consistent with the
    topology -- without it, a mid-run ``restore_port`` would mark the
    uplink live while the simulator still black-holes it.
    """

    def __init__(
        self, pnet: PNet, host: str, config: NicConfig, network=None
    ):
        if config.n_planes != pnet.n_planes:
            raise ValueError(
                f"NIC has {config.n_planes} channels but the network has "
                f"{pnet.n_planes} planes"
            )
        if host not in pnet.hosts:
            raise ValueError(f"{host!r} is not a host")
        self.pnet = pnet
        self.host = host
        self.config = config
        self.network = network
        self._down_ports: Set[int] = set()
        #: Uplinks each down port actually failed (a link already dead
        #: for another reason is not ours to restore).
        self._failed_by_port: Dict[int, List[Tuple[int, str, str]]] = {}

    @property
    def down_ports(self) -> Set[int]:
        return set(self._down_ports)

    def usable_planes(self) -> List[int]:
        return [
            idx
            for idx in range(self.config.n_planes)
            if self.config.port_of_plane(idx) not in self._down_ports
        ]

    def _fail_link(self, plane_idx: int, u: str, v: str) -> None:
        if self.network is not None:
            self.network.fail_link(plane_idx, u, v)
        else:
            self.pnet.plane(plane_idx).fail_link(u, v)

    def _restore_link(self, plane_idx: int, u: str, v: str) -> None:
        if self.network is not None:
            self.network.restore_link(plane_idx, u, v)
        else:
            self.pnet.plane(plane_idx).restore_link(u, v)

    def fail_port(self, port: int) -> List[int]:
        """Cut one physical port; returns the planes it took down."""
        affected = self.config.planes_of_port(port)
        if port in self._down_ports:
            return affected
        self._down_ports.add(port)
        failed: List[Tuple[int, str, str]] = []
        for plane_idx in affected:
            plane = self.pnet.plane(plane_idx)
            tor = plane.tor_of(self.host)
            if not plane.is_failed(self.host, tor):
                self._fail_link(plane_idx, self.host, tor)
                failed.append((plane_idx, self.host, tor))
        self._failed_by_port[port] = failed
        return affected

    def restore_port(self, port: int) -> None:
        """Bring one port back: restore exactly the uplinks it failed.

        Links that were already failed when the port went down (or that
        an independent fault took down since) stay failed -- the NIC
        only owns its own transitions.
        """
        if port not in self._down_ports:
            return
        self._down_ports.discard(port)
        for plane_idx, u, v in self._failed_by_port.pop(port, []):
            self._restore_link(plane_idx, u, v)

    def surviving_fraction(self, failed_ports: int) -> float:
        """Uplink capacity fraction left after ``failed_ports`` port cuts.

        The redundancy-vs-cost trade-off in one number: with P ports,
        each failure costs 1/P of the host's capacity.
        """
        if not 0 <= failed_ports <= self.config.ports:
            raise ValueError("failed_ports out of range")
        return 1.0 - failed_ports / self.config.ports
