"""The one flow-launch vocabulary shared by both simulators.

:class:`FlowSpec` describes a flow independently of which engine runs it:
``PacketNetwork.add_flow(spec=...)`` and ``FluidSimulator.add_flow(
spec=...)`` both take it, so workloads, policies, and the ``repro.api``
facade can hand the same object to either simulator.

Construction is **keyword-only** (works down to Python 3.9, unlike
``dataclass(kw_only=True)``): a flow description has too many
same-typed fields for positional calls to stay readable.  The legacy
positional ``add_flow(src, dst, size, paths, ...)`` forms still work
through a deprecation shim in each simulator (see
:func:`warn_positional_add_flow`).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: A path tagged with the dataplane it lives on (re-exported for
#: convenience; canonical home is :mod:`repro.core.pnet`).
PlanePath = Tuple[int, List[str]]


class FlowSpec:
    """One flow to launch: endpoints, size, subflow paths, scheduling.

    Args (keyword-only):
        src / dst: endpoint host names.
        size: bytes to transfer (>= 0).
        paths: subflow paths as ``(plane_idx, node_list)`` tuples; one
            path means single-path transport, several mean MPTCP (packet
            sim) / multi-subflow allocation (fluid sim).
        at: launch time in simulated seconds; ``None`` means "now"
            (time 0 for a not-yet-started packet sim).
        tag: free-form label copied onto the resulting flow record.
        transport: ``"tcp"`` or ``"dctcp"`` (packet simulator only; the
            fluid model has no transport knob and ignores it).
        on_complete: callback fired with the flow record at completion.
        fidelity: per-flow fidelity hint for the hybrid engine --
            ``"packet"`` or ``"fluid"`` forces that engine for this flow,
            bypassing the :class:`repro.hybrid.PromotionPolicy`;
            ``None`` (default) lets the policy decide.  Pure engines
            ignore the hint (the flow already runs at their fidelity).
    """

    __slots__ = ("src", "dst", "size", "paths", "at", "tag", "transport",
                 "on_complete", "fidelity")

    def __init__(
        self,
        *,
        src: str,
        dst: str,
        size: float,
        paths: Sequence[PlanePath],
        at: Optional[float] = None,
        tag: Optional[str] = None,
        transport: str = "tcp",
        on_complete: Optional[Callable[[Any], None]] = None,
        fidelity: Optional[str] = None,
    ):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if fidelity not in (None, "packet", "fluid"):
            raise ValueError(
                f"fidelity must be None, 'packet' or 'fluid', "
                f"got {fidelity!r}"
            )
        if not paths:
            raise ValueError("need at least one path")
        for plane_idx, path in paths:
            if path[0] != src or path[-1] != dst:
                raise ValueError(
                    f"path {path} does not connect {src}->{dst}"
                )
        self.src = src
        self.dst = dst
        self.size = size
        self.paths = list(paths)
        self.at = at
        self.tag = tag
        self.transport = transport
        self.on_complete = on_complete
        self.fidelity = fidelity

    @property
    def planes(self) -> Tuple[int, ...]:
        """The plane of each subflow path, in path order."""
        return tuple(plane for plane, __ in self.paths)

    def replace(self, **changes: Any) -> "FlowSpec":
        """A copy with the given fields replaced."""
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(changes)
        return FlowSpec(**kwargs)

    def __repr__(self) -> str:
        return (
            f"FlowSpec(src={self.src!r}, dst={self.dst!r}, "
            f"size={self.size!r}, paths={len(self.paths)} path(s), "
            f"at={self.at!r}, tag={self.tag!r}, "
            f"transport={self.transport!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FlowSpec):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )


def warn_positional_add_flow(entry: str) -> None:
    """Emit the shared deprecation warning for legacy add_flow calls."""
    warnings.warn(
        f"positional {entry}(src, dst, size, paths, ...) is deprecated; "
        f"pass {entry}(spec=FlowSpec(src=..., dst=..., size=..., "
        f"paths=...)) instead (see repro.core.flowspec)",
        DeprecationWarning,
        stacklevel=3,
    )
