"""End-host/OS model (paper section 3.4).

A P-Net host sees one NIC channel -- and therefore one IP address -- per
dataplane.  The OS exposes the planes to applications through *proxy
interfaces* so deployed applications need no topology knowledge:

* ``low_latency``    -- single shortest path on the fewest-hop plane;
* ``high_throughput`` -- MPTCP over K = 8 * N pooled shortest paths;
* ``balanced``       -- the OS default: round-robin over planes.

Applications pick an interface with a traffic-class tag; bulk transfers
can additionally let :class:`~repro.core.flow_policy.SizeThresholdPolicy`
decide single- vs multi-path from the flow size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional

from repro.core.failures import FailureAwareSelector, detect_failed_uplinks
from repro.core.flow_policy import SizeThresholdPolicy
from repro.core.path_selection import (
    KspMultipathPolicy,
    MinHopPlanePolicy,
    PathSelectionPolicy,
    RoundRobinPlanePolicy,
)
from repro.core.pnet import PlanePath, PNet


class TrafficClass(enum.Enum):
    """Application tags mapping onto the proxy interfaces."""

    LOW_LATENCY = "low_latency"
    HIGH_THROUGHPUT = "high_throughput"
    BALANCED = "balanced"


@dataclass
class FlowSpec:
    """Everything the transport needs to launch one flow."""

    flow_id: int
    src: str
    dst: str
    size: float
    paths: List[PlanePath]
    traffic_class: TrafficClass

    @property
    def is_multipath(self) -> bool:
        return len(self.paths) > 1


class EndHost:
    """One host's view of the P-Net.

    Args:
        pnet: the network.
        host: this host's node name.
        ksp_subflows: K for the high-throughput interface; defaults to
            the paper's rule K = 8 * N.
        seed: randomisation seed shared by this host's policies.
    """

    def __init__(
        self,
        pnet: PNet,
        host: str,
        ksp_subflows: Optional[int] = None,
        seed: int = 0,
    ):
        if host not in pnet.hosts:
            raise ValueError(f"{host!r} is not a host of {pnet.name}")
        self.pnet = pnet
        self.host = host
        self.seed = seed
        k = ksp_subflows if ksp_subflows is not None else 8 * pnet.n_planes
        self._policies: Dict[TrafficClass, FailureAwareSelector] = {
            TrafficClass.LOW_LATENCY: FailureAwareSelector(
                MinHopPlanePolicy(pnet, salt=seed)
            ),
            TrafficClass.HIGH_THROUGHPUT: FailureAwareSelector(
                KspMultipathPolicy(pnet, k=k, seed=seed)
            ),
            TrafficClass.BALANCED: FailureAwareSelector(
                RoundRobinPlanePolicy(pnet, salt=seed)
            ),
        }
        self.size_policy = SizeThresholdPolicy()
        self._flow_ids = count()

    # --- addressing ------------------------------------------------------

    def ip_address(self, plane_idx: int) -> str:
        """The host's address on one plane (one subnet per dataplane)."""
        if not 0 <= plane_idx < self.pnet.n_planes:
            raise IndexError(f"no plane {plane_idx}")
        idx = self.pnet.hosts.index(self.host)
        return f"10.{plane_idx}.{idx // 256}.{idx % 256}"

    @property
    def addresses(self) -> List[str]:
        return [self.ip_address(i) for i in range(self.pnet.n_planes)]

    # --- failure visibility -------------------------------------------------

    def usable_planes(self) -> List[int]:
        """Planes whose uplink currently has link status."""
        down = set(detect_failed_uplinks(self.pnet, self.host))
        return [i for i in range(self.pnet.n_planes) if i not in down]

    # --- flow setup ---------------------------------------------------------

    def open_flow(
        self,
        dst: str,
        size: float,
        traffic_class: Optional[TrafficClass] = None,
    ) -> FlowSpec:
        """Select paths for a new flow to ``dst``.

        When no traffic class is given, the size-threshold policy picks
        between the balanced (single-path) and high-throughput (MPTCP)
        interfaces -- the end-to-end behaviour the paper recommends.

        Raises:
            RuntimeError: if every plane is partitioned for this pair.
        """
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if traffic_class is None:
            traffic_class = (
                TrafficClass.HIGH_THROUGHPUT
                if self.size_policy.use_multipath(size)
                else TrafficClass.BALANCED
            )
        flow_id = next(self._flow_ids)
        paths = self._policies[traffic_class].select(
            self.host, dst, flow_id
        )
        if not paths:
            raise RuntimeError(
                f"no live path from {self.host} to {dst} on any plane"
            )
        return FlowSpec(
            flow_id=flow_id,
            src=self.host,
            dst=dst,
            size=size,
            paths=paths,
            traffic_class=traffic_class,
        )

    def policy(self, traffic_class: TrafficClass) -> FailureAwareSelector:
        """The failure-wrapped policy behind one proxy interface."""
        return self._policies[traffic_class]
