"""The :class:`PNet` object: N dataplanes plus host-side routing views.

A PNet wraps the dataplanes of a :class:`~repro.topology.parallel.
ParallelTopology` (or a single serial topology) and memoises the queries
every path-selection policy needs: per-plane shortest path lengths,
shortest-path sets, and K-shortest-path sets.  Caches are invalidated
explicitly via :meth:`PNet.invalidate_routing` when failures change the
topology (mirroring routing reconvergence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.routing.ksp import k_shortest_paths
from repro.routing.shortest import all_shortest_paths, shortest_path_length
from repro.topology.graph import Topology, link_key
from repro.topology.parallel import ParallelTopology

#: A path tagged with its dataplane index.
PlanePath = Tuple[int, List[str]]

#: Cap on equal-cost path enumeration; larger pools only matter above the
#: parallelism the paper considers (N <= 8, K <= 32).
DEFAULT_PATH_POOL = 64


@dataclass
class RepairStats:
    """What one incremental routing repair did to the memoised caches.

    Attributes:
        kept: cache entries untouched (no cached path died).
        repaired: entries filtered in place (some paths died, survivors
            remain valid and correctly ranked).
        reenumerated: entries dropped because every cached path died --
            the next query re-enumerates from scratch.
    """

    kept: int = 0
    repaired: int = 0
    reenumerated: int = 0


class PNet:
    """A parallel dataplane network, as seen by its end hosts."""

    def __init__(
        self,
        planes: Union[ParallelTopology, Sequence[Topology]],
        name: str = "",
    ):
        if isinstance(planes, ParallelTopology):
            self.planes: List[Topology] = list(planes.planes)
            self.name = name or planes.name
        else:
            self.planes = list(planes)
            self.name = name or f"pnet-x{len(self.planes)}"
        if not self.planes:
            raise ValueError("need at least one dataplane")
        host_set = set(self.planes[0].hosts)
        for plane in self.planes[1:]:
            if set(plane.hosts) != host_set:
                raise ValueError("planes must share the same host set")
        self._hosts = sorted(host_set, key=_host_key)
        self._len_cache: Dict[Tuple[int, str, str], Optional[int]] = {}
        self._sp_cache: Dict[Tuple[int, str, str], List[List[str]]] = {}
        self._ksp_cache: Dict[
            Tuple[int, str, str], Tuple[int, List[List[str]]]
        ] = {}

    @classmethod
    def serial(cls, topo: Topology, name: str = "") -> "PNet":
        """A single-plane (serial) network under the same API."""
        return cls([topo], name=name or f"serial-{topo.name}")

    # --- basic accessors ---------------------------------------------------

    @property
    def n_planes(self) -> int:
        return len(self.planes)

    @property
    def hosts(self) -> List[str]:
        return list(self._hosts)

    def plane(self, index: int) -> Topology:
        return self.planes[index]

    def plane_view(self, plane_indices: Sequence[int]) -> "PNet":
        """A PNet over a subset of this network's planes.

        The view *shares* the underlying :class:`Topology` objects (a
        failure marked through either is visible to both) but has its
        own fresh routing caches, renumbering the selected planes as
        ``0..k-1`` in the given order.  This is the per-shard routing
        state of :mod:`repro.shard`: pair the view with the
        :class:`~repro.shard.partition.ShardPlan` that produced the
        index list to translate plane numbers back to global.
        """
        indices = list(plane_indices)
        if not indices:
            raise ValueError("need at least one plane index")
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate plane indices: {indices}")
        for idx in indices:
            if not 0 <= idx < len(self.planes):
                raise ValueError(
                    f"plane {idx} out of range for {len(self.planes)} planes"
                )
        return PNet(
            [self.planes[idx] for idx in indices],
            name=f"{self.name}/planes-{'-'.join(map(str, indices))}",
        )

    def invalidate_routing(self) -> None:
        """Drop memoised paths (call after failing/restoring links)."""
        self._len_cache.clear()
        self._sp_cache.clear()
        self._ksp_cache.clear()

    def invalidate_plane(self, plane_idx: int) -> None:
        """Drop memoised paths of one plane only.

        Required after a *restore* (shortest paths may get shorter, so
        survivors of a filter would no longer be correctly ranked); other
        planes' caches stay warm.
        """
        for cache in (self._len_cache, self._sp_cache, self._ksp_cache):
            for key in [k for k in cache if k[0] == plane_idx]:
                del cache[key]

    def repair_after_failure(
        self, plane_idx: int, dead_links: Iterable[Tuple[str, str]]
    ) -> RepairStats:
        """Incrementally repair one plane's caches after links *failed*.

        Only entries whose cached paths traverse a dead link are touched:
        survivors are kept (link removal cannot create shorter paths, so
        a surviving shortest path is still shortest and surviving KSP
        entries keep their exact rank among live paths); entries that
        lose every path are dropped and re-enumerate lazily.  This is
        exact, not an approximation -- but only for failures.  After a
        restore call :meth:`invalidate_plane` instead.
        """
        dead: Set[Tuple[str, str]] = {link_key(u, v) for u, v in dead_links}
        stats = RepairStats()
        if not dead:
            return stats

        def traverses(path: List[str]) -> bool:
            return any(link_key(u, v) in dead for u, v in zip(path, path[1:]))

        for key in [k for k in self._sp_cache if k[0] == plane_idx]:
            paths = self._sp_cache[key]
            survivors = [p for p in paths if not traverses(p)]
            if len(survivors) == len(paths):
                stats.kept += 1
            elif survivors:
                self._sp_cache[key] = survivors
                stats.repaired += 1
            else:
                # All equal-cost shortest paths died: the distance itself
                # is stale, so the length witness goes too.
                del self._sp_cache[key]
                self._len_cache.pop(key, None)
                stats.reenumerated += 1
        # Lengths without a surviving shortest-path witness may be stale.
        for key in [k for k in self._len_cache if k[0] == plane_idx]:
            witnesses = self._sp_cache.get(key)
            if witnesses is None:
                del self._len_cache[key]
        for key in [k for k in self._ksp_cache if k[0] == plane_idx]:
            k_cached, paths = self._ksp_cache[key]
            survivors = [p for p in paths if not traverses(p)]
            if len(survivors) == len(paths):
                stats.kept += 1
            elif survivors:
                # Survivors keep their relative (sorted) order and are the
                # true top-len(survivors) live paths; queries beyond that
                # re-enumerate (the completeness bound shrank).
                self._ksp_cache[key] = (len(survivors), survivors)
                stats.repaired += 1
            else:
                del self._ksp_cache[key]
                stats.reenumerated += 1
        return stats

    # --- per-plane path queries ---------------------------------------------

    def path_length(self, plane_idx: int, src: str, dst: str) -> Optional[int]:
        """Shortest live path length in one plane (None if disconnected)."""
        key = (plane_idx, src, dst)
        if key not in self._len_cache:
            self._len_cache[key] = shortest_path_length(
                self.planes[plane_idx], src, dst
            )
        return self._len_cache[key]

    def shortest_paths(
        self, plane_idx: int, src: str, dst: str, limit: int = DEFAULT_PATH_POOL
    ) -> List[List[str]]:
        """Equal-cost shortest paths in one plane (cached, capped)."""
        key = (plane_idx, src, dst)
        if key not in self._sp_cache:
            self._sp_cache[key] = all_shortest_paths(
                self.planes[plane_idx], src, dst, limit=limit
            )
        return self._sp_cache[key]

    def ksp(self, plane_idx: int, src: str, dst: str, k: int) -> List[List[str]]:
        """K shortest loopless paths in one plane (cached).

        Yen's output is a sorted prefix-stable list, so a cached result
        computed for a larger K answers any smaller K by slicing -- this
        makes K sweeps cost only their largest K.
        """
        key = (plane_idx, src, dst)
        cached = self._ksp_cache.get(key)
        if cached is not None:
            k_cached, paths = cached
            # A shorter-than-K result that exhausted the graph is also
            # complete for any larger K.
            if k_cached >= k or len(paths) < k_cached:
                return paths[:k]
        paths = k_shortest_paths(self.planes[plane_idx], src, dst, k)
        self._ksp_cache[key] = (k, paths)
        return paths

    # --- cross-plane queries --------------------------------------------------

    def plane_lengths(self, src: str, dst: str) -> List[Optional[int]]:
        """Shortest path length per plane (None where disconnected)."""
        return [
            self.path_length(i, src, dst) for i in range(self.n_planes)
        ]

    def min_hop_planes(self, src: str, dst: str) -> List[int]:
        """Planes achieving the minimum path length (may be several)."""
        lengths = self.plane_lengths(src, dst)
        live = [l for l in lengths if l is not None]
        if not live:
            return []
        best = min(live)
        return [i for i, l in enumerate(lengths) if l == best]

    def min_hop_length(self, src: str, dst: str) -> Optional[int]:
        """Best shortest-path length over all planes."""
        live = [l for l in self.plane_lengths(src, dst) if l is not None]
        return min(live) if live else None

    def live_planes(self, src: str, dst: str) -> List[int]:
        """Planes in which src and dst are currently connected."""
        return [
            i
            for i, l in enumerate(self.plane_lengths(src, dst))
            if l is not None
        ]

    def __repr__(self) -> str:
        return (
            f"PNet({self.name!r}, planes={self.n_planes}, "
            f"hosts={len(self._hosts)})"
        )


def _host_key(host: str):
    """Sort hosts numerically when they follow the h{i} convention."""
    suffix = host[1:]
    return (0, int(suffix)) if suffix.isdigit() else (1, host)
