"""P-Net core: host-side path selection over parallel dataplanes.

This is the paper's primary contribution: given N disjoint dataplanes
reaching every host, decide -- at the host -- which plane(s) and path(s)
each flow uses.

* :mod:`repro.core.pnet` -- :class:`~repro.core.pnet.PNet`, the central
  object binding planes, hosts, and routing views.
* :mod:`repro.core.path_selection` -- selection policies (ECMP hashing,
  pooled K-shortest-paths for MPTCP, min-hop plane, round-robin).
* :mod:`repro.core.host` -- the end-host/OS model: one IP per plane,
  "low-latency" and "high-throughput" proxy interfaces, traffic classes.
* :mod:`repro.core.flow_policy` -- the empirical size threshold rule
  (section 5.1.2): small flows single-path, bulk flows multipath.
* :mod:`repro.core.failures` -- link-status based plane failure detection
  and graceful fail-over.
"""

from repro.core.flowspec import FlowSpec
from repro.core.pnet import PNet
from repro.core.path_selection import (
    EcmpPolicy,
    KspMultipathPolicy,
    MinHopPlanePolicy,
    RoundRobinPlanePolicy,
)
from repro.core.host import EndHost, TrafficClass
from repro.core.flow_policy import SizeThresholdPolicy
from repro.core.failures import FailureAwareSelector

__all__ = [
    "FlowSpec",
    "PNet",
    "EcmpPolicy",
    "KspMultipathPolicy",
    "MinHopPlanePolicy",
    "RoundRobinPlanePolicy",
    "EndHost",
    "TrafficClass",
    "SizeThresholdPolicy",
    "FailureAwareSelector",
]
