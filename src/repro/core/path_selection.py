"""Host-side path-selection policies over a :class:`~repro.core.pnet.PNet`.

Each policy answers one question for a flow ``(src, dst, flow_id)``: which
(plane, path) tuples may carry its traffic?  Single-path policies return a
one-element list; the MPTCP policy returns up to K.

Policies (paper section 4 and 3.4):

* :class:`EcmpPolicy` -- the naive adaptation of ECMP: hash the flow onto
  one plane, then onto one equal-cost shortest path inside it.  Shown by
  the paper to waste parallel capacity on sparse traffic (Figure 6a/6b).
* :class:`KspMultipathPolicy` -- MPTCP + K-shortest-paths: K subflow paths
  pooled across planes, with per-pair randomised tie-breaking among
  equal-cost candidates (as in Jellyfish [38]).  The paper's proposal.
* :class:`MinHopPlanePolicy` -- the "low-latency" interface: a single
  shortest path on whichever plane has the fewest hops, exploiting
  heterogeneous planes (Figures 7/10).
* :class:`RoundRobinPlanePolicy` -- the OS default load-balancer
  (section 3.4): planes taken round-robin per flow.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pnet import DEFAULT_PATH_POOL, PlanePath, PNet
from repro.routing.ecmp import flow_hash


class PathSelectionPolicy:
    """Base class: maps a flow to the (plane, path) set it may use."""

    def __init__(self, pnet: PNet):
        self.pnet = pnet

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        """Paths for one flow; empty list means unroutable (all planes cut)."""
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop any policy-private memos (topology changed).

        The PNet's own caches are managed separately (``invalidate_
        routing`` / ``repair_after_failure``); this hook only covers
        state the policy keeps on top, so the base is a no-op.
        """

    def fingerprint(self) -> Tuple:
        """Content key for caching: everything ``select`` depends on
        besides the network itself (the caller keys the network
        separately via its content hash)."""
        raise NotImplementedError

    @property
    def is_multipath(self) -> bool:
        return False


class EcmpPolicy(PathSelectionPolicy):
    """Per-flow hashing: one plane, one equal-cost path."""

    def __init__(self, pnet: PNet, salt: int = 0):
        super().__init__(pnet)
        self.salt = salt

    def fingerprint(self) -> Tuple:
        return ("ecmp", self.salt)

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        plane_idx = flow_hash(src, dst, flow_id, self.salt) % self.pnet.n_planes
        options = self.pnet.shortest_paths(plane_idx, src, dst)
        if not options:
            return []
        pick = flow_hash(src, dst, flow_id, self.salt + 1) % len(options)
        return [(plane_idx, options[pick])]


class RoundRobinPlanePolicy(PathSelectionPolicy):
    """Planes taken round-robin by flow id; hashed path inside the plane."""

    def __init__(self, pnet: PNet, salt: int = 0):
        super().__init__(pnet)
        self.salt = salt

    def fingerprint(self) -> Tuple:
        return ("round-robin", self.salt)

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        plane_idx = flow_id % self.pnet.n_planes
        options = self.pnet.shortest_paths(plane_idx, src, dst)
        if not options:
            return []
        pick = flow_hash(src, dst, flow_id, self.salt) % len(options)
        return [(plane_idx, options[pick])]


class MinHopPlanePolicy(PathSelectionPolicy):
    """The "low-latency" interface: single path on the fewest-hop plane.

    Among planes tied for minimum hop count, and among equal-cost paths in
    the chosen plane, the choice is hashed per flow so concurrent flows
    spread out.
    """

    def __init__(self, pnet: PNet, salt: int = 0):
        super().__init__(pnet)
        self.salt = salt

    def fingerprint(self) -> Tuple:
        return ("min-hop", self.salt)

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        planes = self.pnet.min_hop_planes(src, dst)
        if not planes:
            return []
        plane_idx = planes[
            flow_hash(src, dst, flow_id, self.salt) % len(planes)
        ]
        options = self.pnet.shortest_paths(plane_idx, src, dst)
        pick = flow_hash(src, dst, flow_id, self.salt + 1) % len(options)
        return [(plane_idx, options[pick])]


class KspMultipathPolicy(PathSelectionPolicy):
    """MPTCP + K-shortest-paths pooled across planes (the paper's scheme).

    For each plane, up to K candidate paths are gathered: the equal-cost
    shortest set (shuffled per (src, dst) with a deterministic seed, so
    different host pairs prefer different cores) extended by Yen's
    algorithm when a plane has fewer than K short paths.  Candidates are
    then merged globally shortest-first with round-robin across planes on
    ties, and the first K become the subflow paths.
    """

    def __init__(
        self,
        pnet: PNet,
        k: int,
        seed: int = 0,
        path_pool: int = DEFAULT_PATH_POOL,
    ):
        super().__init__(pnet)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.seed = seed
        self.path_pool = path_pool
        self._cache: Dict[Tuple[str, str], List[PlanePath]] = {}

    def fingerprint(self) -> Tuple:
        return ("ksp-multipath", self.k, self.seed, self.path_pool)

    def invalidate(self) -> None:
        self._cache.clear()

    @property
    def is_multipath(self) -> bool:
        return self.k > 1

    def select(self, src: str, dst: str, flow_id: int = 0) -> List[PlanePath]:
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = self._compute(src, dst)
        return list(self._cache[key])

    def _plane_candidates(
        self, plane_idx: int, src: str, dst: str, rng: random.Random
    ) -> List[List[str]]:
        """Up to K candidate paths in one plane, ties shuffled."""
        shortest = self.pnet.shortest_paths(
            plane_idx, src, dst, limit=self.path_pool
        )
        if not shortest:
            return []
        shortest = list(shortest)
        rng.shuffle(shortest)
        if len(shortest) >= self.k:
            return shortest[: self.k]
        # Not enough equal-cost paths: extend with Yen (includes shortest
        # ones again, so filter to the longer tail only).
        extended = self.pnet.ksp(plane_idx, src, dst, self.k)
        base_len = len(shortest[0])
        longer = [p for p in extended if len(p) > base_len]
        # Shuffle within each length class for tie diversity.
        by_len: Dict[int, List[List[str]]] = {}
        for p in longer:
            by_len.setdefault(len(p), []).append(p)
        tail: List[List[str]] = []
        for length in sorted(by_len):
            group = by_len[length]
            rng.shuffle(group)
            tail.extend(group)
        return (shortest + tail)[: self.k]

    def _compute(self, src: str, dst: str) -> List[PlanePath]:
        rng = random.Random(f"ksp-{self.seed}-{src}-{dst}")
        per_plane: List[List[List[str]]] = [
            self._plane_candidates(i, src, dst, rng)
            for i in range(self.pnet.n_planes)
        ]
        # Merge shortest-first, round-robin across planes on equal length.
        pooled: List[PlanePath] = []
        cursors = [0] * len(per_plane)
        last_plane = rng.randrange(self.pnet.n_planes)
        while len(pooled) < self.k:
            best_plane = -1
            best_len = None
            start = (last_plane + 1) % len(per_plane)
            order = list(range(start, len(per_plane))) + list(range(start))
            for plane_idx in order:
                cur = cursors[plane_idx]
                if cur >= len(per_plane[plane_idx]):
                    continue
                length = len(per_plane[plane_idx][cur])
                if best_len is None or length < best_len:
                    best_len = length
                    best_plane = plane_idx
            if best_plane < 0:
                break
            pooled.append((best_plane, per_plane[best_plane][cursors[best_plane]]))
            cursors[best_plane] += 1
            last_plane = best_plane
        return pooled
