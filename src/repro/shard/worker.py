"""Shard workers: one simulator instance over one shard's planes.

A worker owns every flow whose paths live entirely on its planes and
the local *slice* (a :class:`~repro.shard.coupling.PartialMptcpSource`)
of every spanning connection.  It exposes four calls --
``apply(updates)``, ``advance(t)``, ``digest()``, ``result()`` --
driven through :func:`handle_message`, which both channel backends
(:mod:`repro.shard.channel`) route to, so the local and process
backends execute byte-identical logic.

Packet workers build a :class:`~repro.sim.network.PacketNetwork` over
*all* planes (elements instantiate lazily, so remote planes cost
nothing) which keeps global plane indices valid everywhere; fluid
workers build a :class:`~repro.fluid.flowsim.FluidSimulator` over only
their planes, passing global ids via ``plane_ids``.

Fault events arrive pre-routed (the engine restricts the schedule to
each shard's planes via :meth:`FaultSchedule.restricted`) and are
applied at the dataplane level -- link/queue state with the same
refcounted overlap semantics as :class:`repro.faults.FaultInjector`.
Control-plane reactions (route repair, flow resteering) are inherently
cross-plane and stay serial; see ``resolve_shards`` in the engine.
"""

from __future__ import annotations

import functools
import heapq
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.control.monitor import sample_packet_rows
from repro.core.flowspec import FlowSpec
from repro.faults.schedule import FaultEvent
from repro.fluid.flowsim import FluidSimulator
from repro.obs import NULL_REGISTRY, Registry
from repro.shard.coupling import PartialMptcpSource
from repro.shard.partition import ShardPlan
from repro.sim.network import PacketNetwork
from repro.topology.graph import Topology, link_key


@dataclass
class WorkerConfig:
    """Everything a shard worker needs, picklable for the process backend.

    ``entries`` lists (global flow id, spec) pairs in submission order;
    a gid present in ``spanning_share`` is the local slice of a
    spanning connection seeded with that many bytes, anything else is a
    fully local flow.  ``fault_events`` must already be restricted to
    this shard's planes.
    """

    shard: int
    plan: ShardPlan
    planes: List[Topology]
    engine: str  # "packet" | "fluid"
    sim_kwargs: Dict[str, Any] = field(default_factory=dict)
    entries: List[Tuple[int, FlowSpec]] = field(default_factory=list)
    spanning_share: Dict[int, int] = field(default_factory=dict)
    fault_events: Tuple[FaultEvent, ...] = ()
    collect_obs: bool = False
    #: In-process only (not picklable across the process backend): use
    #: this registry directly instead of a private one -- the serial
    #: one-shard path injects the caller's registry here so telemetry
    #: is byte-identical to a plain un-sharded run.
    obs_registry: Optional[Registry] = None
    #: A pickled worker from a prior ``("snapshot",)`` reply.  When set,
    #: :func:`build_worker` unpickles it instead of constructing fresh
    #: state, resuming the worker mid-run (see :mod:`repro.ckpt`).
    restore_blob: Optional[bytes] = None


def _next_event_time(loop) -> Optional[float]:
    """Earliest *real* (non-cancelled) pending event, popping dead heads."""
    heap = loop._heap
    while heap and heap[0][2].cancelled:
        heapq.heappop(heap)
        if loop._cancelled > 0:
            loop._cancelled -= 1
    return heap[0][0] if heap else None


class PacketShardWorker:
    """Packet-level worker: local flows + partial spanning sources."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        if config.obs_registry is not None:
            self.obs = config.obs_registry
        else:
            self.obs = Registry() if config.collect_obs else NULL_REGISTRY
        self.net = PacketNetwork(
            config.planes, obs=self.obs, **config.sim_kwargs
        )
        self._local_gids: List[int] = []
        self._spanning: Dict[int, PartialMptcpSource] = {}
        for gid, spec in config.entries:
            if gid in config.spanning_share:
                self._add_spanning(gid, spec, config.spanning_share[gid])
            else:
                self.net.add_flow(spec=spec)
                self._local_gids.append(gid)
        #: Refcounted held-down links, mirroring FaultInjector semantics
        #: for overlapping down events: (plane, link-key) -> count.
        self._down_count: Dict[Tuple[int, Tuple[str, str]], int] = {}
        # Partials, not lambdas: the pending events must pickle for the
        # engine's epoch-barrier checkpoints.
        for event in config.fault_events:
            self.net.loop.schedule_at(
                event.at, functools.partial(self._apply_fault, event)
            )

    # --- construction helpers ----------------------------------------------

    def _add_spanning(self, gid: int, spec: FlowSpec, share: int) -> None:
        paths = [
            path
            for __, path in self.config.plan.local_paths(
                spec, self.config.shard
            )
        ]
        source = PartialMptcpSource(
            gid=gid,
            loop=self.net.loop,
            size=share,
            n_subflows=len(paths),
            mss=self.net.mss,
            min_rto=self.net.min_rto,
            name=f"mptcp-g{gid}",
            tracer=self.net._tracer,
        )
        for subflow, plane_path in zip(source.subflows, paths):
            self.net.wire(subflow, plane_path)
        at = 0.0 if spec.at is None else spec.at
        self.net.loop.schedule_at(at, source.start)
        self._spanning[gid] = source

    # --- fault application ---------------------------------------------------

    def _event_links(self, event: FaultEvent) -> List[Tuple[str, str]]:
        plane = self.net.planes[event.plane]
        if event.u is not None:
            return [link_key(event.u, event.v)]
        node = event.node if event.node is not None else event.host
        if node is not None:
            return [
                l.key for l in plane.incident_links(node, live_only=False)
            ]
        return [l.key for l in plane.links]

    def _apply_fault(self, event: FaultEvent) -> None:
        plane_idx = event.plane
        for key in self._event_links(event):
            count = self._down_count.get((plane_idx, key), 0)
            if event.is_down:
                self._down_count[(plane_idx, key)] = count + 1
                if count == 0:
                    self.net.fail_link(plane_idx, *key)
            else:
                if count == 0:
                    continue  # not held down by this schedule
                self._down_count[(plane_idx, key)] = count - 1
                if count == 1:
                    self.net.restore_link(plane_idx, *key)

    # --- barrier protocol ----------------------------------------------------

    def apply(self, updates: Dict[str, Any]) -> None:
        """Apply one barrier's coupling updates, in deterministic order."""
        for gid in sorted(updates.get("finalize", ())):
            self._spanning[gid].finalize()
        for gid, terms in sorted(updates.get("views", {}).items()):
            self._spanning[gid].remote.set(*terms)
        for gid, delta in sorted(updates.get("grants", {}).items()):
            self._spanning[gid].grant(delta)

    def advance(self, t: Optional[float]) -> None:
        self.net.run(until=float("inf") if t is None else t)

    def digest(self) -> Dict[str, Any]:
        # Coupling state only: telemetry travels once, in ``result`` --
        # exporting the registry at every barrier was pure overhead the
        # engine never read, and it would break the fixed numpy digest
        # layout of the shm backend.
        return {
            "t": self.net.loop.now,
            "next": _next_event_time(self.net.loop),
            "flows": {
                gid: source.digest()
                for gid, source in sorted(self._spanning.items())
            },
        }

    # --- control protocol ----------------------------------------------------

    def control_sample(self) -> Dict[str, Any]:
        """This shard's slice of one control tick's snapshot.

        Plane counters are filtered to owned planes so the engine's
        merge across shards is a disjoint union; flow rows carry global
        ids.  Spanning slices live on ``net.wire``, not ``net._active``,
        so they are naturally absent -- the driver never steers them.
        """
        local_planes = set(
            self.config.plan.planes_of_shard[self.config.shard]
        )
        plane_cum, rows = sample_packet_rows(
            self.net, gid_of=lambda fid: self._local_gids[fid]
        )
        return {
            "plane_cum": {
                plane: cum for plane, cum in plane_cum.items()
                if plane in local_planes
            },
            "rows": rows,
        }

    def control_apply(self, aborts, launches) -> Dict[str, Any]:
        """Execute one control batch: aborts first, then relaunches.

        The relaunched flow keeps its *global* id (the fresh local id
        maps back to the same gid), so records, policy state and the
        engine's ownership table stay stable across a resteer --
        unlike the serial path, where ids change and callers re-key.
        """
        by_gid = {
            self._local_gids[fid]: fid
            for fid, __, __s in self.net.active_flows()
        }
        aborted = set()
        for gid in aborts:
            fid = by_gid.get(gid)
            if fid is not None:
                self.net.abort_flow(fid)
                aborted.add(gid)
        for gid, spec in launches:
            if gid not in aborted:
                continue  # vanished since the sample: nothing to move
            self.net.add_flow(spec=spec)
            self._local_gids.append(gid)
        return {"next": _next_event_time(self.net.loop)}

    def result(self) -> Dict[str, Any]:
        local_planes = set(
            self.config.plan.planes_of_shard[self.config.shard]
        )
        for record in self.net.records:
            record.flow_id = self._local_gids[record.flow_id]
        return {
            "records": list(self.net.records),
            "plane_totals": {
                plane: totals
                for plane, totals in self.net.plane_queue_totals().items()
                if plane in local_planes
            },
            "events_processed": self.net.loop.events_processed,
            "obs": self.obs.export_state()
            if self.config.collect_obs else None,
        }


class FluidShardWorker:
    """Fluid-model worker: plane-local flows only (exact decomposition).

    Spanning flows couple through the global max-min allocation, so the
    engine refuses to shard them (``ShardSafetyError``); everything
    that reaches a fluid worker is embarrassingly parallel and there is
    a single run-to-horizon barrier instead of epochs.
    """

    def __init__(self, config: WorkerConfig):
        if config.spanning_share:
            raise ValueError(
                "fluid workers cannot hold spanning flows: "
                f"{sorted(config.spanning_share)}"
            )
        if config.fault_events:
            raise ValueError(
                "fluid workers do not replay fault schedules; fault runs "
                "need the serial injector (resteering is cross-plane)"
            )
        self.config = config
        local_ids = list(config.plan.planes_of_shard[config.shard])
        if config.obs_registry is not None:
            self.obs = config.obs_registry
        else:
            self.obs = Registry() if config.collect_obs else NULL_REGISTRY
        self.sim = FluidSimulator(
            [config.planes[i] for i in local_ids],
            plane_ids=local_ids,
            obs=self.obs,
            **config.sim_kwargs,
        )
        self._gid_of: Dict[int, int] = {}
        for gid, spec in config.entries:
            fid = self.sim.add_flow(spec=spec)
            self._gid_of[fid] = gid

    def apply(self, updates: Dict[str, Any]) -> None:
        if updates:
            raise ValueError("fluid workers take no coupling updates")

    def advance(self, t: Optional[float]) -> None:
        self.sim.run(until=t)

    def digest(self) -> Dict[str, Any]:
        return {"t": self.sim.now, "next": None, "flows": {}}

    def result(self) -> Dict[str, Any]:
        for record in self.sim.records:
            record.flow_id = self._gid_of[record.flow_id]
        return {
            "records": list(self.sim.records),
            "plane_totals": {},
            "events_processed": self.sim.events_processed,
            "delivered_bytes": self.sim.delivered_bytes,
            "obs": self.obs.export_state()
            if self.config.collect_obs else None,
        }


def build_worker(config: WorkerConfig):
    if config.restore_blob is not None:
        # The restored worker keeps its *checkpointed* registry (it holds
        # the first segment's counters); callers that injected a live
        # registry absorb the worker's state after the run instead of
        # swapping it out, which would orphan net.obs publications.
        return pickle.loads(config.restore_blob)
    if config.engine == "packet":
        return PacketShardWorker(config)
    if config.engine == "fluid":
        return FluidShardWorker(config)
    raise ValueError(f"unknown shard engine {config.engine!r}")


def handle_message(worker, message: Tuple) -> Tuple:
    """Execute one engine request against a worker; never raises.

    The single dispatch point both channel backends share: replies are
    ``("digest", payload)`` / ``("result", payload)`` or ``("error",
    traceback_text)``.
    """
    try:
        tag = message[0]
        if tag == "run":
            __, t_target, updates = message
            worker.apply(updates)
            worker.advance(t_target)
            return ("digest", worker.digest())
        if tag == "digest":
            return ("digest", worker.digest())
        if tag == "control-sample":
            # New tags, not extra keys on "run": the shm codec's fixed
            # numpy layouts only know run/digest, while pickled frames
            # carry these transparently on every backend.
            return ("control", worker.control_sample())
        if tag == "control-apply":
            __, aborts, launches = message
            return ("control", worker.control_apply(aborts, launches))
        if tag == "snapshot":
            # The worker pickles *itself* -- event heap, transport
            # state, fault refcounts and telemetry in one graph -- so a
            # restored worker resumes byte-identically.
            return ("snapshot", pickle.dumps(
                worker, protocol=pickle.HIGHEST_PROTOCOL
            ))
        if tag == "stop":
            return ("result", worker.result())
        raise ValueError(f"unknown shard message {tag!r}")
    except Exception:
        return ("error", traceback.format_exc())


def worker_main(conn, config: WorkerConfig) -> None:
    """Process-backend entry point: serve requests over a Pipe until stop."""
    try:
        worker = build_worker(config)
        startup_error = None
    except Exception:
        worker, startup_error = None, traceback.format_exc()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if startup_error is not None:
                conn.send(("error", startup_error))
                break
            reply = handle_message(worker, message)
            conn.send(reply)
            if reply[0] in ("result", "error"):
                break
    finally:
        conn.close()
