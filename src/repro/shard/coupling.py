"""Cross-shard MPTCP coupling state.

A spanning connection's subflows live on different shards, but LIA
(RFC 6356) couples their congestion-avoidance increase through three
aggregate terms -- ``total_cwnd``, ``max_i cwnd_i/rtt_i^2`` and
``sum_i cwnd_i/rtt_i`` -- and the subflows share one send-buffer pool.
Those are the *only* two pieces of cross-plane state in the paper's
model (planes are disjoint in the core), so the epoch barrier
exchanges exactly them:

* each shard exports a per-connection **digest**: per-subflow
  ``(cwnd, srtt)``, its local pool ``remaining``, ACKed bytes, and a
  drained flag;
* the engine folds all remote digests into a :class:`RemoteTerms`
  view per shard and rebalances the shared pool across shards with a
  deterministic largest-remainder split weighted by each shard's
  current aggregate rate estimate (``sum cwnd/srtt``).

:class:`PartialMptcpSource` is the shard-side connection object: a
normal :class:`~repro.sim.mptcp.MptcpSource` restricted to the local
subflows, whose :meth:`coupling_terms` add the epoch-stale remote
terms and whose pool can be topped up (or clawed back) at barriers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.mptcp import _DEFAULT_RTT, MptcpSource


def lia_terms(
    subflows: Sequence[Tuple[float, Optional[float]]],
) -> Tuple[float, float, float]:
    """LIA aggregate terms from ``(cwnd, srtt)`` pairs.

    Same arithmetic (and accumulation order) as
    :meth:`MptcpSource.coupling_terms`, so a digest computed remotely
    combines consistently with live local terms.
    """
    total = 0.0
    max_term = 0.0
    sum_term = 0.0
    for cwnd, srtt in subflows:
        rtt = srtt or _DEFAULT_RTT
        total += cwnd
        term = cwnd / rtt ** 2
        if term > max_term:
            max_term = term
        sum_term += cwnd / rtt
    return total, max_term, sum_term


def rate_weight(subflows: Sequence[Tuple[float, Optional[float]]]) -> float:
    """A shard's share estimate for pool rebalancing: ``sum cwnd/srtt``."""
    return sum(cwnd / (srtt or _DEFAULT_RTT) for cwnd, srtt in subflows)


def largest_remainder(total: int, weights: Sequence[int]) -> List[int]:
    """Split ``total`` integer units by integer ``weights``, exactly.

    Pure integer largest-remainder (quotas via ``//``, leftovers to the
    largest integer remainders, ties to the lowest index): fully
    deterministic, sums exactly to ``total``, and -- when ``total <=
    sum(weights)`` -- never hands any slot more than its weight, which
    is what lets the engine use link/demand capacities directly as
    weights without clamping.
    """
    n = len(weights)
    if n == 0:
        raise ValueError("need at least one weight")
    if any(w < 0 for w in weights):
        raise ValueError(f"weights must be >= 0: {list(weights)}")
    if total <= 0:
        return [0] * n
    wsum = sum(weights)
    if wsum == 0:
        weights = [1] * n
        wsum = n
    shares = [total * w // wsum for w in weights]
    leftover = total - sum(shares)
    order = sorted(
        range(n), key=lambda i: (-(total * weights[i] % wsum), i)
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares


class RemoteTerms:
    """Epoch-stale LIA terms of a connection's *remote* subflows.

    Mutable on purpose: the worker holds one instance per spanning
    connection and overwrites it in place at each barrier, so the
    source object needs no re-wiring.
    """

    __slots__ = ("total_cwnd", "max_term", "sum_term")

    def __init__(
        self,
        total_cwnd: float = 0.0,
        max_term: float = 0.0,
        sum_term: float = 0.0,
    ):
        self.total_cwnd = total_cwnd
        self.max_term = max_term
        self.sum_term = sum_term

    def set(self, total_cwnd: float, max_term: float, sum_term: float) -> None:
        self.total_cwnd = total_cwnd
        self.max_term = max_term
        self.sum_term = sum_term


class PartialMptcpSource(MptcpSource):
    """The local-shard slice of a spanning MPTCP connection.

    Carries only the subflows whose planes this shard owns, seeded with
    an initial share of the connection's bytes.  Differences from the
    serial source:

    * :meth:`coupling_terms` adds the epoch-stale :class:`RemoteTerms`.
    * Draining the local pool records ``drain_time`` but does **not**
      complete the connection -- the engine decides global completion
      from all shards' digests, and a barrier :meth:`grant` can revive
      the subflows with freshly rebalanced bytes.
    """

    def __init__(self, *, gid: int, remote: Optional[RemoteTerms] = None,
                 **kwargs):
        super().__init__(**kwargs)
        self.gid = gid
        self.remote = remote if remote is not None else RemoteTerms()
        #: Simulated time the local pool last drained (all local bytes
        #: ACKed, nothing left to pull); None while active.
        self.drain_time: Optional[float] = None

    # --- coupled congestion control ---------------------------------------

    def coupling_terms(self) -> tuple:
        total, max_term, sum_term = super().coupling_terms()
        total += self.remote.total_cwnd
        if self.remote.max_term > max_term:
            max_term = self.remote.max_term
        sum_term += self.remote.sum_term
        return total, max_term, sum_term

    # --- barrier-side pool management -------------------------------------

    def grant(self, delta: int) -> None:
        """Apply a barrier rebalance: add (or claw back) pool bytes.

        A positive delta revives idle subflows -- a scheduler-fed
        subflow that ran dry parks itself with no pending events, so we
        must kick ``_try_send`` after refilling the pool.
        """
        if delta == 0:
            return
        if delta < 0 and self.remaining + delta < 0:
            raise ValueError(
                f"flow {self.gid}: cannot claw back {-delta} bytes from a "
                f"pool of {self.remaining}"
            )
        self.remaining += delta
        if delta > 0:
            self.drain_time = None
            if self.start_time is not None and not self._completed:
                for sf in self.subflows:
                    if sf.start_time is None:
                        sf.start()
                    elif not sf.completed:
                        sf._try_send()

    def digest(self) -> Dict:
        """This shard's slice of the connection, for the epoch barrier."""
        subflows = [(sf.cwnd, sf.srtt) for sf in self.subflows]
        return {
            "subflows": subflows,
            "remaining": self.remaining,
            "acked": self.acked_bytes,
            "drained": self.drain_time is not None,
            "drain_time": self.drain_time,
            "weight": rate_weight(subflows),
            # Bytes the local windows could take right now: the pull
            # pressure the serial scheduler would see.  The engine
            # rebalances the pool toward demand + one epoch of rate, so
            # as epoch -> 0 byte placement converges to the serial
            # demand-driven pull.
            "demand": sum(
                max(0, int(sf.cwnd) - sf.flightsize)
                for sf in self.subflows
            ),
            # Window of subflows currently in fast recovery: the engine
            # never claws their new-data float away (recovery with
            # nothing new to send cannot clock ACKs and degrades to a
            # full RTO).
            "recovery_cwnd": sum(
                int(sf.cwnd) for sf in self.subflows if sf.in_recovery
            ),
            "retransmits": self.retransmits,
            "packets_sent": self.packets_sent,
            "start_time": self.start_time,
        }

    # --- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        # Unlike the serial source, a zero-byte local share is not the
        # end of the connection: park drained (subflows unstarted, so
        # they don't self-complete against the empty pool) and wait for
        # a barrier grant to start them.
        self.start_time = self.loop.now
        if self.remaining == 0:
            self._finish()
            return
        for subflow in self.subflows:
            subflow.start()

    def _finish(self) -> None:
        # Local drain, not connection completion: stay revivable.
        if self.drain_time is None:
            self.drain_time = self.loop.now

    def finalize(self) -> None:
        """Engine-directed teardown once the connection completed globally."""
        self._completed = True
        for sf in self.subflows:
            if not sf.completed:
                sf.abort()


def split_bytes(size: int, counts: Sequence[int]) -> List[int]:
    """Initial byte split across shards, proportional to subflow count.

    The serial pull scheduler hands bytes to whichever subflow's window
    opens; an even per-subflow split is the matching prior before any
    cwnd/RTT signal exists.  Deterministic largest-remainder, so every
    run (and every backend) starts identically.
    """
    return largest_remainder(size, [int(c) for c in counts])
