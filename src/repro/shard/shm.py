"""Shared-memory barrier channel: numpy digests over SPSC ring buffers.

The pipe backend pays four syscalls plus two pickles per worker per
barrier -- the dominant cost of an epoch at the default 100 us
spacing.  This module replaces that hot path with one POSIX shared-
memory segment per worker holding two single-producer/single-consumer
byte rings (engine->worker commands, worker->engine replies), and a
fixed-layout ``float64`` packing (:class:`DigestCodec`) for the two
messages the barrier loop actually exchanges: the ``run`` command
(barrier target + coupling updates) and the coupling digest reply.
Everything else -- snapshots, results, errors -- falls back to pickled
blobs over the same rings, chunk-streamed so a payload larger than the
ring capacity cannot deadlock the strict request/reply protocol.

Ring protocol
-------------

Each ring is ``[write_pos u64][read_pos u64][data bytes]``; positions
are monotonically increasing byte counts, so ``write_pos - read_pos``
is the unread span and wraparound is plain modular indexing.  A
message is a sequence of chunks, each framed as ``[len|FINAL u32]
[crc32 u32][payload]``.  The writer copies the full frame into the
ring *before* publishing ``write_pos`` (publish-after-write), so a
reader never observes a half-written frame at a published position;
the CRC additionally catches torn frames from a writer that died
mid-copy with the position already advanced, surfacing them as
:class:`ShmRingCorruption` instead of garbage decoding.  Blocking
sides poll with a liveness callback and optional deadline, so a dead
peer raises :class:`ShmRingClosed` promptly rather than hanging.

Byte-identity with the pipe backend is a hard requirement (and is
pinned by tests): the codec packs ints and floats into ``float64``
slots exactly (all integer fields are far below 2**53) and restores
``None`` sentinels from NaN, so a decoded digest compares equal to
the pickled one field-for-field.
"""

from __future__ import annotations

import math
import os
import pickle
import struct
import time
import traceback
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from multiprocessing import shared_memory

from repro.shard.channel import (
    Message,
    ShardWorkerError,
    _mp_context,
    get_timeout,
)

HEADER_BYTES = 16  # two little-endian uint64: write_pos, read_pos
FRAME_BYTES = 8  # u32 chunk length (high bit: FINAL), u32 crc32
FINAL_FLAG = 0x8000_0000

#: Ring capacities (bytes).  Commands are tiny (a barrier target plus a
#: few floats per spanning connection); replies carry digests and --
#: rarely -- chunk-streamed snapshot blobs, so the reply ring is wider
#: to keep the common digest in one frame.
CMD_CAPACITY = 1 << 16
REPLY_CAPACITY = 1 << 18

#: Busy-poll iterations before the waiter starts sleeping: barrier
#: replies usually land within microseconds, so a short spin avoids
#: paying a scheduler quantum per epoch.
SPIN_ROUNDS = 2_000
SLEEP_SECONDS = 100e-6

#: Message kind tags (first payload byte).
KIND_NUMPY = b"N"
KIND_PICKLE = b"P"


class ShmRingError(RuntimeError):
    """Base failure of the shared-memory ring."""


class ShmRingCorruption(ShmRingError):
    """A frame failed its CRC or carried an impossible length: the
    writer died mid-frame (torn write) or the buffer was trampled."""


class ShmRingTimeout(ShmRingError):
    """No progress within the deadline while the peer is still alive."""


class ShmRingClosed(ShmRingError):
    """The peer died while the ring still owed us progress."""


class ShmRing:
    """One single-producer/single-consumer byte ring over a buffer slice.

    The engine and the worker each hold a reader on one ring and a
    writer on the other; nothing here locks because each position has
    exactly one writer.  ``buf`` may be any writable buffer (a
    ``SharedMemory.buf`` in production, a ``bytearray`` in unit tests).
    """

    def __init__(self, buf, offset: int, capacity: int):
        if capacity <= FRAME_BYTES:
            raise ValueError(f"ring capacity too small: {capacity}")
        self._view = memoryview(buf)[
            offset : offset + HEADER_BYTES + capacity
        ]
        self.capacity = capacity

    # --- positions (u64, monotonic; writer owns [0], reader owns [1]) --

    @property
    def write_pos(self) -> int:
        return struct.unpack_from("<Q", self._view, 0)[0]

    @write_pos.setter
    def write_pos(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 0, value)

    @property
    def read_pos(self) -> int:
        return struct.unpack_from("<Q", self._view, 8)[0]

    @read_pos.setter
    def read_pos(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 8, value)

    def reset(self) -> None:
        """Zero both positions (creator-side initialisation)."""
        self.write_pos = 0
        self.read_pos = 0

    def release(self) -> None:
        """Drop the memoryview so the backing segment can close."""
        self._view.release()

    # --- byte-wise circular copies -------------------------------------

    def _copy_in(self, pos: int, payload: bytes) -> None:
        at = pos % self.capacity
        first = min(len(payload), self.capacity - at)
        base = HEADER_BYTES
        self._view[base + at : base + at + first] = payload[:first]
        if first < len(payload):
            rest = len(payload) - first
            self._view[base : base + rest] = payload[first:]

    def _copy_out(self, pos: int, n: int) -> bytes:
        at = pos % self.capacity
        first = min(n, self.capacity - at)
        base = HEADER_BYTES
        out = bytes(self._view[base + at : base + at + first])
        if first < n:
            out += bytes(self._view[base : base + n - first])
        return out

    # --- blocking helpers ----------------------------------------------

    def _wait(
        self,
        ready: Callable[[], bool],
        timeout: Optional[float],
        alive: Optional[Callable[[], bool]],
        what: str,
    ) -> None:
        for __ in range(SPIN_ROUNDS):
            if ready():
                return
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while not ready():
            if alive is not None and not alive():
                # Final check: the peer may have published right before
                # dying.
                if ready():
                    return
                raise ShmRingClosed(
                    f"ring peer died while waiting for {what}"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ShmRingTimeout(
                    f"no {what} within {timeout}s on shm ring"
                )
            time.sleep(SLEEP_SECONDS)

    # --- message exchange ----------------------------------------------

    def send(
        self,
        payload: bytes,
        timeout: Optional[float] = None,
        alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Publish one message, chunking if it exceeds the free span.

        Chunks stream through the ring as the reader drains it, so a
        message larger than the whole capacity (snapshot blobs) still
        goes through -- the reader accumulates until the FINAL chunk.
        """
        max_chunk = self.capacity - FRAME_BYTES
        offset = 0
        while True:
            chunk = payload[offset : offset + max_chunk]
            offset += len(chunk)
            final = offset >= len(payload)
            need = FRAME_BYTES + len(chunk)
            self._wait(
                lambda: self.capacity - (self.write_pos - self.read_pos)
                >= need,
                timeout,
                alive,
                "ring space",
            )
            length = len(chunk) | (FINAL_FLAG if final else 0)
            frame = struct.pack(
                "<II", length, zlib.crc32(chunk) & 0xFFFFFFFF
            )
            pos = self.write_pos
            self._copy_in(pos, frame)
            self._copy_in(pos + FRAME_BYTES, chunk)
            # Publish only after the full frame is in place.
            self.write_pos = pos + need
            if final:
                return

    def recv(
        self,
        timeout: Optional[float] = None,
        alive: Optional[Callable[[], bool]] = None,
    ) -> bytes:
        """Read one full (possibly chunked) message."""
        parts: List[bytes] = []
        while True:
            self._wait(
                lambda: self.write_pos - self.read_pos >= FRAME_BYTES,
                timeout,
                alive,
                "ring data",
            )
            pos = self.read_pos
            length, crc = struct.unpack("<II", self._copy_out(pos, FRAME_BYTES))
            final = bool(length & FINAL_FLAG)
            length &= ~FINAL_FLAG
            if length > self.capacity - FRAME_BYTES:
                raise ShmRingCorruption(
                    f"frame length {length} exceeds ring capacity "
                    f"{self.capacity} (torn or trampled frame header)"
                )
            self._wait(
                lambda: self.write_pos - self.read_pos
                >= FRAME_BYTES + length,
                timeout,
                alive,
                "ring data",
            )
            chunk = self._copy_out(pos + FRAME_BYTES, length)
            if zlib.crc32(chunk) & 0xFFFFFFFF != crc:
                raise ShmRingCorruption(
                    "frame payload failed its CRC (torn write: the "
                    "producer died mid-frame, or the buffer was "
                    "corrupted)"
                )
            # Publishing read_pos frees the span for the writer.
            self.read_pos = pos + FRAME_BYTES + length
            parts.append(chunk)
            if final:
                return parts[0] if len(parts) == 1 else b"".join(parts)


#: Digest scalar fields, in layout order, after the per-subflow
#: ``(cwnd, srtt)`` pairs.  (name, none_as_nan, integer)
_DIGEST_SCALARS: Tuple[Tuple[str, bool, bool], ...] = (
    ("remaining", False, True),
    ("acked", False, True),
    ("drained", False, True),  # bool, packed 0/1
    ("drain_time", True, False),
    ("weight", False, False),
    ("demand", False, True),
    ("recovery_cwnd", False, True),
    ("retransmits", False, True),
    ("packets_sent", False, True),
    ("start_time", True, False),
)

#: Run-command slots per spanning connection.
_RUN_SLOTS = 7  # has_view, view_total, view_max, view_sum, has_grant, grant, finalize


class DigestCodec:
    """Fixed float64 layout for one worker's barrier traffic.

    Built deterministically from the worker's config on *both* sides
    of the channel (the engine holds the same config it shipped to the
    worker), so neither end ever transmits the layout itself.  Encodes
    the barrier ``run`` command (engine -> worker) and the coupling
    digest reply (worker -> engine); every other message pickles.
    """

    def __init__(self, config):
        spec_of = dict(config.entries)
        self.gids: List[int] = sorted(config.spanning_share)
        self.subflows: Dict[int, int] = {
            gid: len(config.plan.local_paths(spec_of[gid], config.shard))
            for gid in self.gids
        }
        per_gid = [
            2 * self.subflows[gid] + len(_DIGEST_SCALARS)
            for gid in self.gids
        ]
        self.digest_len = 2 + sum(per_gid)  # [t, next] + per-connection
        self.run_len = 1 + _RUN_SLOTS * len(self.gids)  # [t_target] + ...

    # --- digest (worker -> engine) -------------------------------------

    def encode_digest(self, payload: Dict[str, Any]) -> bytes:
        arr = np.empty(self.digest_len, dtype=np.float64)
        arr[0] = payload["t"]
        nxt = payload["next"]
        arr[1] = math.nan if nxt is None else nxt
        i = 2
        flows = payload["flows"]
        for gid in self.gids:
            part = flows[gid]
            for cwnd, srtt in part["subflows"]:
                arr[i] = cwnd
                arr[i + 1] = math.nan if srtt is None else srtt
                i += 2
            for name, none_as_nan, __ in _DIGEST_SCALARS:
                value = part[name]
                if none_as_nan and value is None:
                    arr[i] = math.nan
                else:
                    arr[i] = value
                i += 1
        return arr.tobytes()

    def decode_digest(self, data: bytes) -> Dict[str, Any]:
        arr = np.frombuffer(data, dtype=np.float64)
        if arr.shape[0] != self.digest_len:
            raise ShmRingCorruption(
                f"digest block has {arr.shape[0]} slots, layout expects "
                f"{self.digest_len}"
            )
        nxt = float(arr[1])
        payload: Dict[str, Any] = {
            "t": float(arr[0]),
            "next": None if math.isnan(nxt) else nxt,
            "flows": {},
        }
        i = 2
        for gid in self.gids:
            subflows = []
            for __ in range(self.subflows[gid]):
                srtt = float(arr[i + 1])
                subflows.append(
                    (float(arr[i]), None if math.isnan(srtt) else srtt)
                )
                i += 2
            part: Dict[str, Any] = {"subflows": subflows}
            for name, none_as_nan, integer in _DIGEST_SCALARS:
                raw = float(arr[i])
                i += 1
                if none_as_nan:
                    part[name] = None if math.isnan(raw) else raw
                elif integer:
                    part[name] = int(raw)
                else:
                    part[name] = raw
            part["drained"] = bool(part["drained"])
            payload["flows"][gid] = part
        return payload

    # --- run command (engine -> worker) --------------------------------

    def encode_run(
        self, t_target: Optional[float], updates: Dict[str, Any]
    ) -> bytes:
        arr = np.zeros(self.run_len, dtype=np.float64)
        arr[0] = math.nan if t_target is None else t_target
        views = updates.get("views", {})
        grants = updates.get("grants", {})
        finalize = set(updates.get("finalize", ()))
        for slot, gid in enumerate(self.gids):
            i = 1 + slot * _RUN_SLOTS
            if gid in views:
                total, max_term, sum_term = views[gid]
                arr[i] = 1.0
                arr[i + 1] = total
                arr[i + 2] = max_term
                arr[i + 3] = sum_term
            if gid in grants:
                arr[i + 4] = 1.0
                arr[i + 5] = grants[gid]
            if gid in finalize:
                arr[i + 6] = 1.0
        return arr.tobytes()

    def decode_run(
        self, data: bytes
    ) -> Tuple[Optional[float], Dict[str, Any]]:
        arr = np.frombuffer(data, dtype=np.float64)
        if arr.shape[0] != self.run_len:
            raise ShmRingCorruption(
                f"run block has {arr.shape[0]} slots, layout expects "
                f"{self.run_len}"
            )
        t_raw = float(arr[0])
        t_target = None if math.isnan(t_raw) else t_raw
        if not self.gids:
            # Mirrors the pipe backend exactly: workers with no
            # spanning slice (fluid workers included) get a bare {}.
            return t_target, {}
        updates: Dict[str, Any] = {"views": {}, "grants": {}, "finalize": []}
        for slot, gid in enumerate(self.gids):
            i = 1 + slot * _RUN_SLOTS
            if arr[i] != 0.0:
                updates["views"][gid] = (
                    float(arr[i + 1]),
                    float(arr[i + 2]),
                    float(arr[i + 3]),
                )
            if arr[i + 4] != 0.0:
                updates["grants"][gid] = int(arr[i + 5])
            if arr[i + 6] != 0.0:
                updates["finalize"].append(gid)
        return t_target, updates


def _segment_size() -> int:
    return 2 * HEADER_BYTES + CMD_CAPACITY + REPLY_CAPACITY


def _make_rings(buf) -> Tuple[ShmRing, ShmRing]:
    """(command ring, reply ring) over one shared segment."""
    cmd = ShmRing(buf, 0, CMD_CAPACITY)
    reply = ShmRing(buf, HEADER_BYTES + CMD_CAPACITY, REPLY_CAPACITY)
    return cmd, reply


class ShmChannel:
    """Engine-side endpoint of the shared-memory backend.

    Same ``post``/``collect``/``rpc``/``close`` surface as the pipe
    channel; the barrier ``run``/digest hot path travels as numpy
    blocks, everything else as pickled blobs, all over the two rings.
    """

    def __init__(self, config, timeout: Optional[float] = None):
        self._codec = DigestCodec(config)
        self._timeout = get_timeout(timeout)
        self._shm = shared_memory.SharedMemory(
            create=True, size=_segment_size()
        )
        self._cmd, self._reply = _make_rings(self._shm.buf)
        self._cmd.reset()
        self._reply.reset()
        ctx = _mp_context()
        self._proc = ctx.Process(
            target=shm_worker_main,
            args=(self._shm.name, config),
            daemon=True,
        )
        self._proc.start()

    def _alive(self) -> bool:
        return self._proc.is_alive()

    def post(self, message: Message) -> None:
        if message[0] == "run":
            __, t_target, updates = message
            body = KIND_NUMPY + self._codec.encode_run(t_target, updates)
        else:
            body = KIND_PICKLE + pickle.dumps(
                message, protocol=pickle.HIGHEST_PROTOCOL
            )
        try:
            self._cmd.send(body, timeout=self._timeout, alive=self._alive)
        except ShmRingClosed:
            raise ShardWorkerError(
                f"shm shard worker (pid {self._proc.pid}) died before "
                f"the barrier request (exitcode={self._proc.exitcode})"
            ) from None
        except ShmRingTimeout:
            raise ShardWorkerError(
                f"shm shard worker (pid {self._proc.pid}) did not drain "
                f"the command ring within {self._timeout}s "
                "(PNET_SHARD_TIMEOUT)"
            ) from None

    def collect(self) -> Message:
        try:
            body = self._reply.recv(
                timeout=self._timeout, alive=self._alive
            )
        except ShmRingClosed:
            raise ShardWorkerError(
                f"shm shard worker (pid {self._proc.pid}) died "
                f"mid-barrier (exitcode={self._proc.exitcode})"
            ) from None
        except ShmRingTimeout:
            raise ShardWorkerError(
                f"shm shard worker (pid {self._proc.pid}) sent no "
                f"barrier reply within {self._timeout}s "
                "(PNET_SHARD_TIMEOUT)"
            ) from None
        if body[:1] == KIND_NUMPY:
            reply: Message = ("digest", self._codec.decode_digest(body[1:]))
        else:
            reply = pickle.loads(body[1:])
        if reply[0] == "error":
            self.close()
            raise ShardWorkerError(reply[1])
        return reply

    def rpc(self, message: Message) -> Message:
        self.post(message)
        return self.collect()

    def close(self) -> None:
        if self._proc.is_alive():
            # A healthy worker parked on the command ring has no pipe
            # EOF to notice; give an exiting one a moment, then stop it.
            self._proc.join(timeout=0.25)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5)
        for ring in (self._cmd, self._reply):
            try:
                ring.release()
            except (BufferError, ValueError):  # pragma: no cover
                pass
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover
            pass


def shm_worker_main(name: str, config) -> None:
    """Worker-process entry point: serve barrier requests over the rings.

    Mirrors :func:`repro.shard.worker.worker_main` exactly -- same
    dispatch, same stop conditions -- with the ring transport and the
    numpy fast path swapped in.  Exits if the engine process goes away
    (re-parented: ``getppid`` changed) so an engine crash cannot leak
    workers blocked on the command ring.
    """
    from repro.shard.worker import build_worker, handle_message

    parent = os.getppid()
    engine_alive = lambda: os.getppid() == parent  # noqa: E731
    shm = shared_memory.SharedMemory(name=name)
    cmd, reply_ring = _make_rings(shm.buf)
    codec = DigestCodec(config)
    try:
        try:
            worker = build_worker(config)
            startup_error = None
        except Exception:
            worker, startup_error = None, traceback.format_exc()
        while True:
            try:
                body = cmd.recv(alive=engine_alive)
            except ShmRingClosed:
                break
            if startup_error is not None:
                reply: Message = ("error", startup_error)
            else:
                if body[:1] == KIND_NUMPY:
                    t_target, updates = codec.decode_run(body[1:])
                    message: Message = ("run", t_target, updates)
                else:
                    message = pickle.loads(body[1:])
                reply = handle_message(worker, message)
            if reply[0] == "digest":
                try:
                    out = KIND_NUMPY + codec.encode_digest(reply[1])
                except Exception:
                    reply = ("error", traceback.format_exc())
                    out = KIND_PICKLE + pickle.dumps(reply)
            else:
                out = KIND_PICKLE + pickle.dumps(
                    reply, protocol=pickle.HIGHEST_PROTOCOL
                )
            try:
                reply_ring.send(out, alive=engine_alive)
            except ShmRingClosed:
                break
            if reply[0] in ("result", "error"):
                break
    finally:
        for ring in (cmd, reply_ring):
            try:
                ring.release()
            except (BufferError, ValueError):  # pragma: no cover
                pass
        shm.close()
