"""Barrier channels between the shard engine and its workers.

Two interchangeable backends drive the *same* worker logic
(:func:`repro.shard.worker.handle_message`):

* ``local`` -- the worker object lives in the engine process and
  messages are plain function calls.  Zero IPC cost; used for
  ``PNET_SHARD_BACKEND=local``, for tests, and as the reference
  behaviour the process backend must match byte-for-byte.
* ``process`` -- one ``multiprocessing.Process`` per shard, messages
  over a duplex ``Pipe``.  Fork start method preferred (cheap topology
  hand-off); falls back to the platform default where fork is
  unavailable, in which case the worker config is pickled across.

Both present the same two calls to the engine: ``rpc(message) ->
reply`` and ``close()``.  Every reply is a ``(tag, payload)`` tuple;
a worker-side exception comes back as ``("error", traceback_text)``
and is re-raised in the engine as :class:`ShardWorkerError`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Tuple

Message = Tuple[Any, ...]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the worker-side traceback."""


def get_backend(override: str = None) -> str:
    """Resolve the channel backend: override, else ``PNET_SHARD_BACKEND``.

    Defaults to ``process`` (real parallelism).  ``local`` runs every
    shard in the engine process -- same results, no speedup, handy for
    debugging and for pickling-free profiling.
    """
    backend = override or os.environ.get("PNET_SHARD_BACKEND", "process")
    if backend not in ("local", "process"):
        raise ValueError(
            f"shard backend must be 'local' or 'process', got {backend!r}"
        )
    return backend


def _mp_context():
    """Fork-preferred multiprocessing context (same policy as exp.runner)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class LocalChannel:
    """In-process endpoint: the worker is a plain object, rpc is a call."""

    def __init__(self, worker, handler):
        self._worker = worker
        self._handler = handler

    def rpc(self, message: Message) -> Message:
        reply = self._handler(self._worker, message)
        if reply[0] == "error":
            raise ShardWorkerError(reply[1])
        return reply

    def close(self) -> None:
        self._worker = None


class ProcessChannel:
    """Pipe endpoint to a forked worker process."""

    def __init__(self, target, config):
        ctx = _mp_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=target, args=(child_conn, config), daemon=True
        )
        self._proc.start()
        child_conn.close()  # parent keeps only its end

    def rpc(self, message: Message) -> Message:
        self._conn.send(message)
        try:
            reply = self._conn.recv()
        except EOFError:
            raise ShardWorkerError(
                "shard worker exited without replying "
                f"(exitcode={self._proc.exitcode})"
            ) from None
        if reply[0] == "error":
            self.close()
            raise ShardWorkerError(reply[1])
        return reply

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._proc.is_alive():
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(timeout=5)
