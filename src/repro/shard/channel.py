"""Barrier channels between the shard engine and its workers.

Three interchangeable backends drive the *same* worker logic
(:func:`repro.shard.worker.handle_message`):

* ``local`` -- the worker object lives in the engine process and
  messages are plain function calls.  Zero IPC cost; used for
  ``PNET_SHARD_BACKEND=local``, for tests, and as the reference
  behaviour the other backends must match byte-for-byte.
* ``process`` -- one ``multiprocessing.Process`` per shard, messages
  pickled over a duplex ``Pipe``.  Fork start method preferred (cheap
  topology hand-off); falls back to the platform default where fork is
  unavailable, in which case the worker config is pickled across.
* ``shm`` -- one process per shard, messages over a
  ``multiprocessing.shared_memory`` ring buffer with fixed-layout
  numpy-packed coupling digests (:mod:`repro.shard.shm`).  The default
  where shared memory is available: barrier digests skip pickling and
  pipe syscalls entirely.

Every backend presents the same calls to the engine: ``post(message)``
enqueues a request without waiting, ``collect() -> reply`` blocks for
the matching reply, and ``rpc(message)`` is the post+collect
convenience.  The post/collect split is what lets the engine dispatch
one barrier to *all* workers before waiting on any of them -- the
difference between serialised and parallel epoch execution.

Replies are ``(tag, payload)`` tuples; a worker-side exception comes
back as ``("error", traceback_text)`` and is re-raised in the engine
as :class:`ShardWorkerError`.  ``collect`` never hangs on a dead
worker: both process-backed channels poll worker liveness while
waiting and honour the optional ``PNET_SHARD_TIMEOUT`` deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Any, Callable, Optional, Tuple

Message = Tuple[Any, ...]

#: Seconds between liveness/deadline checks while waiting for a reply.
POLL_INTERVAL = 0.05

BACKENDS = ("local", "process", "shm")


class ShardWorkerError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback or a
    death/timeout diagnosis when the worker never replied."""


def _default_backend() -> str:
    """``shm`` where POSIX shared memory exists, else ``process``."""
    try:
        import multiprocessing.shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - very old/exotic platforms
        return "process"
    return "shm"


def get_backend(override: Optional[str] = None) -> str:
    """Resolve the channel backend: override, else ``PNET_SHARD_BACKEND``.

    Defaults to ``shm`` (shared-memory rings, real parallelism without
    per-barrier pickling) where available, else ``process``.  ``local``
    runs every shard in the engine process -- same results, no
    speedup, handy for debugging and pickling-free profiling.
    """
    backend = override or os.environ.get("PNET_SHARD_BACKEND", "")
    if not backend:
        backend = _default_backend()
    if backend not in BACKENDS:
        raise ValueError(
            f"shard backend must be one of {'/'.join(BACKENDS)}, "
            f"got {backend!r}"
        )
    return backend


def get_timeout(override: Optional[float] = None) -> Optional[float]:
    """Barrier reply deadline in seconds (``PNET_SHARD_TIMEOUT``).

    ``None`` (unset/empty/non-positive) waits forever -- worker *death*
    is still detected promptly either way; the deadline additionally
    catches live-but-stuck workers.
    """
    if override is None:
        raw = os.environ.get("PNET_SHARD_TIMEOUT", "").strip()
        if not raw:
            return None
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_SHARD_TIMEOUT must be a number, got {raw!r}"
            ) from None
    return override if override > 0 else None


def _mp_context():
    """Fork-preferred multiprocessing context (same policy as exp.runner)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class LocalChannel:
    """In-process endpoint: the worker is a plain object, rpc is a call.

    ``post`` executes the request immediately (there is no concurrency
    to gain in-process) and queues the reply for ``collect``, so the
    engine's post-all-then-collect-all barrier code is backend-
    agnostic.
    """

    def __init__(self, worker, handler):
        self._worker = worker
        self._handler = handler
        self._replies: deque = deque()

    def post(self, message: Message) -> None:
        self._replies.append(self._handler(self._worker, message))

    def collect(self) -> Message:
        reply = self._replies.popleft()
        if reply[0] == "error":
            raise ShardWorkerError(reply[1])
        return reply

    def rpc(self, message: Message) -> Message:
        self.post(message)
        return self.collect()

    def close(self) -> None:
        self._worker = None
        self._replies.clear()


class ProcessChannel:
    """Pipe endpoint to a forked worker process."""

    def __init__(self, target, config, timeout: Optional[float] = None):
        ctx = _mp_context()
        self._timeout = get_timeout(timeout)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=target, args=(child_conn, config), daemon=True
        )
        self._proc.start()
        child_conn.close()  # parent keeps only its end

    def post(self, message: Message) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError):
            raise ShardWorkerError(
                f"shard worker (pid {self._proc.pid}) died before the "
                f"barrier request (exitcode={self._proc.exitcode})"
            ) from None

    def collect(self) -> Message:
        self._wait_for_reply()
        try:
            reply = self._conn.recv()
        except (EOFError, OSError):
            # EOFError on a clean close; ConnectionResetError (an
            # OSError) when the worker was killed outright.
            self._proc.join(timeout=5)
            raise ShardWorkerError(
                f"shard worker (pid {self._proc.pid}) died mid-barrier "
                f"without replying (exitcode={self._proc.exitcode})"
            ) from None
        if reply[0] == "error":
            self.close()
            raise ShardWorkerError(reply[1])
        return reply

    def _wait_for_reply(self) -> None:
        """Block until a reply is readable, failing fast on a dead or
        stuck worker instead of hanging the barrier."""
        deadline = (
            time.monotonic() + self._timeout
            if self._timeout is not None else None
        )
        while not self._conn.poll(POLL_INTERVAL):
            if not self._proc.is_alive():
                # One last poll: the reply may have landed in the pipe
                # buffer just before the worker died.
                if self._conn.poll(0):
                    return
                raise ShardWorkerError(
                    f"shard worker (pid {self._proc.pid}) died "
                    f"mid-barrier (exitcode={self._proc.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise ShardWorkerError(
                    f"shard worker (pid {self._proc.pid}) sent no "
                    f"barrier reply within {self._timeout}s "
                    "(PNET_SHARD_TIMEOUT)"
                )

    def rpc(self, message: Message) -> Message:
        self.post(message)
        return self.collect()

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._proc.is_alive():
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(timeout=5)
