"""Conservative-PDES lookahead for the epoch-lockstep shard engine.

The only cross-shard state in the model is MPTCP coupling: a spanning
connection's subflows influence each other through the LIA aggregate
terms and the shared send-buffer pool, and both only change when ACKs
arrive -- i.e. no faster than one subflow round-trip.  The minimum
RTT over all spanning subflow paths is therefore a safe *lookahead*:
between two barriers closer than that, no cross-plane influence can
materialise that the next digest exchange would not capture.  This is
the classic conservative-parallel-simulation bound (the same
token-batched window FireSim's switch model uses, sized by the link
latency): each plane may free-run for up to the lookahead before it
must synchronise.

The engine quantises the lookahead to whole epochs
(:func:`epochs_per_sync`), so the epoch remains the staleness unit and
``PNET_LOOKAHEAD=0`` (or a lookahead smaller than one epoch, the
common case at the default 100 us epoch) degenerates to exactly the
one-digest-per-epoch behaviour of the pre-lookahead engine.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.flowspec import FlowSpec
from repro.shard.partition import ShardPlan
from repro.topology.graph import Topology


def path_rtt(plane: Topology, path: Sequence[str]) -> float:
    """Round-trip propagation of one path: twice the one-way sum."""
    one_way = sum(
        plane.link(u, v).propagation for u, v in zip(path, path[1:])
    )
    return 2.0 * one_way


def derive_lookahead(
    planes: Sequence[Topology],
    specs: Sequence[FlowSpec],
    spanning_gids: Sequence[int],
) -> float:
    """Minimum subflow-path RTT over all spanning connections.

    Cross-shard influence travels only via ACK feedback on a spanning
    subflow, so no coupling digest can change in less simulated time
    than the fastest spanning path's round trip.  ``inf`` when nothing
    spans (no coupling at all -- every worker free-runs).
    """
    lookahead = math.inf
    for gid in spanning_gids:
        for plane_idx, path in specs[gid].paths:
            rtt = path_rtt(planes[plane_idx], path)
            if rtt < lookahead:
                lookahead = rtt
    return lookahead


def epochs_per_sync(lookahead: float, epoch: float) -> int:
    """Barrier stride: how many epochs one digest exchange may cover.

    Always >= 1 (the effective lookahead ``stride * epoch`` is never
    below the epoch itself -- the engine's staleness floor), and never
    admits more than the lookahead: ``stride * epoch <= max(epoch,
    lookahead)``, so batched barriers cannot skip past the soonest
    possible cross-plane influence by more than the epoch the caller
    already accepted as the staleness bound.
    """
    if epoch <= 0:
        return 1
    if not math.isfinite(lookahead):
        return 1
    return max(1, int(lookahead // epoch))


def spanning_rtts(
    planes: Sequence[Topology],
    specs: Sequence[FlowSpec],
    spanning_gids: Sequence[int],
) -> List[Tuple[int, float]]:
    """Per-connection minimum path RTT, for diagnostics/benchmarks."""
    out = []
    for gid in spanning_gids:
        rtt = min(
            path_rtt(planes[plane_idx], path)
            for plane_idx, path in specs[gid].paths
        )
        out.append((gid, rtt))
    return out
