"""The epoch-lockstep shard engine.

One engine process drives one worker per plane shard.  Packet-level
runs advance in *epochs* of simulated time: every worker runs its
event loop to the same barrier ``t``, exports a per-spanning-connection
coupling digest (subflow cwnd/RTT, local pool, ACK progress), and the
engine folds the digests into next-epoch updates -- epoch-stale LIA
coupling views, a deterministic largest-remainder rebalance of each
connection's shared send-buffer pool, and completion/finalize notices.
The epoch length is the staleness bound: ``epoch -> 0`` converges to
the serial coupled behaviour, and ``epoch == 0`` (or one shard) takes
the literal serial code path, byte-identical to the pre-shard
simulator.

Fluid runs need no epochs: the paper's planes are disjoint in the
core, so plane-local fluid flows decompose exactly and workers run to
the horizon independently; spanning flows are refused
(:class:`ShardSafetyError`) because the global max-min allocation
couples them continuously.

Determinism: worker digests are merged in shard-index order, pool
splits use integer largest-remainder arithmetic, records are sorted by
global flow id, and per-shard telemetry registries are absorbed into
the caller's registry in shard order -- so results are independent of
scheduling noise and identical across the ``local`` and ``process``
channel backends.
"""

from __future__ import annotations

import functools
import math
import pathlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.ckpt.store import (
    CheckpointError,
    latest,
    next_step,
    prune,
    read_payload,
    step_dir,
    write_checkpoint,
)
from repro.core.flowspec import FlowSpec
from repro.core.pnet import PNet
from repro.obs import get_registry
from repro.shard.channel import (
    LocalChannel,
    ProcessChannel,
    get_backend,
)
from repro.shard.coupling import (
    largest_remainder,
    lia_terms,
    split_bytes,
)
from repro.shard.lookahead import (
    derive_lookahead,
    epochs_per_sync,
)
from repro.shard.partition import (
    ShardPlan,
    classify,
    get_epoch,
    get_lookahead,
    get_shards,
)
from repro.shard.partition import serial_fallback as _serial_fallback
from repro.shard.worker import (
    WorkerConfig,
    _next_event_time,
    build_worker,
    handle_message,
    worker_main,
)
from repro.sim.network import SimFlowRecord
from repro.topology.graph import Topology

#: Hard cap on barrier rounds -- a stuck spanning connection (e.g. all
#: its paths black-holed with no fault restore coming) raises instead
#: of spinning forever.
MAX_ROUNDS = 1_000_000


class ShardSafetyError(RuntimeError):
    """The requested run cannot be sharded without changing results."""


#: ``meta["kind"]`` of checkpoints the shard engine writes: one payload
#: per worker (the worker pickles itself at an epoch barrier) plus
#: ``engine.pkl`` holding the barrier-loop state.
KIND_SHARD = "shard"


def _write_shard_checkpoint(
    root, channels, t, rounds, digests, spanning, shares, plan, epoch,
    backend, keep_last=None, control_state=None,
) -> pathlib.Path:
    """Snapshot every worker at the barrier and write one checkpoint.

    Workers are quiescent at the barrier (their event loops stopped at
    ``t``), so the per-worker pickles plus the engine's own loop state
    form a globally consistent cut.  The container write is manifest-
    last, so a crash mid-write is indistinguishable from no checkpoint.
    """
    for ch in channels:
        ch.post(("snapshot",))
    payloads = {
        f"shard-{shard:02d}.pkl": ch.collect()[1]
        for shard, ch in enumerate(channels)
    }
    payloads["engine.pkl"] = pickle.dumps(
        {
            "t": t,
            "rounds": rounds,
            "digests": digests,
            "spanning": spanning,
            "shares": shares,
            "control": control_state,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    meta = {
        "kind": KIND_SHARD,
        "engine": "packet",
        "t": t,
        "rounds": rounds,
        "n_shards": plan.n_shards,
        "epoch": epoch,
        "backend": backend,
    }
    directory = write_checkpoint(step_dir(root, next_step(root)), payloads, meta)
    if keep_last is not None:
        prune(root, keep_last)
    return directory


def _load_shard_checkpoint(root, n_shards: int) -> Optional[Dict[str, Any]]:
    """The newest valid shard checkpoint under ``root`` (None if empty).

    Shard count must match the resuming run: worker pickles are
    per-shard slices of the workload and cannot be re-partitioned.
    """
    chosen = latest(root)
    if chosen is None:
        return None
    from repro.ckpt.store import read_manifest

    meta = read_manifest(chosen).get("meta", {})
    if meta.get("kind") != KIND_SHARD:
        raise CheckpointError(
            f"{chosen} is a {meta.get('kind')!r} checkpoint, not a shard-"
            "engine one; resume it through its own entry point"
        )
    if meta.get("n_shards") != n_shards:
        raise CheckpointError(
            f"{chosen} was taken with {meta.get('n_shards')} shard(s); "
            f"this run has {n_shards} -- resume must keep the shard count"
        )
    return {
        "path": chosen,
        "workers": [
            read_payload(chosen, f"shard-{shard:02d}.pkl")
            for shard in range(n_shards)
        ],
        "engine": pickle.loads(read_payload(chosen, "engine.pkl")),
    }


@dataclass
class ShardResult:
    """Merged outcome of a sharded (or serial-fallback) run.

    ``records`` are sorted by global flow id (submission order), the
    one ordering every shard count produces identically.
    """

    records: List[Any]
    n_shards: int
    epoch: float
    backend: str
    rounds: int
    events_processed: int
    plane_totals: Dict[int, Dict[str, int]] = field(default_factory=dict)
    delivered_bytes: Optional[float] = None
    #: Effective lookahead (simulated seconds) and the barrier stride it
    #: quantised to: one digest exchange covers ``stride`` epochs.
    lookahead: float = 0.0
    stride: int = 1
    #: Barrier trace ``[(t, jumped), ...]`` when ``trace_barriers`` was
    #: requested (None otherwise): ``jumped`` marks idle jumps past the
    #: regular stride, which are exact (all coupled workers idle).
    barriers: Optional[List[Tuple[float, bool]]] = None
    #: Adaptive-control summary (``{"fingerprint": ..., "stats": ...}``)
    #: when the run had ``control=``; None otherwise.
    control: Optional[Dict[str, Any]] = None

    @property
    def total_drops(self) -> int:
        return sum(t.get("drops", 0) for t in self.plane_totals.values())

    @property
    def total_retransmits(self) -> int:
        return sum(getattr(r, "retransmits", 0) for r in self.records)

    @property
    def fcts(self) -> List[float]:
        return [r.fct for r in self.records]


def _as_planes(planes: Union[PNet, Sequence[Topology]]) -> List[Topology]:
    if isinstance(planes, PNet):
        return list(planes.planes)
    return list(planes)


def _check_schedule(events, n_planes: int) -> Tuple:
    events = tuple(events) if events is not None else ()
    for event in events:
        if event.plane >= n_planes:
            raise ValueError(
                f"fault event at t={event.at} names plane {event.plane} "
                f"but the network has {n_planes}"
            )
    return events


def _strip_callbacks(specs: Sequence[FlowSpec]) -> List[FlowSpec]:
    return [
        spec.replace(on_complete=None) if spec.on_complete is not None
        else spec
        for spec in specs
    ]


def _make_channels(configs: List[WorkerConfig], backend: str):
    if backend == "local":
        return [
            LocalChannel(build_worker(config), handle_message)
            for config in configs
        ]
    if backend == "shm":
        from repro.shard.shm import ShmChannel

        make = ShmChannel
    else:
        make = functools.partial(ProcessChannel, worker_main)
    channels = []
    try:
        for config in configs:
            channels.append(make(config))
    except BaseException:
        _close_all(channels)
        raise
    return channels


def _close_all(channels) -> None:
    for channel in channels:
        try:
            channel.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass


def _describe_spanning(gid: int, spec: FlowSpec, plan: ShardPlan) -> str:
    """Name a spanning flow and exactly where it spans, for refusals."""
    planes_used = sorted({p for p, __ in spec.paths})
    shard_ids = plan.shards_of(spec)
    return (
        f"flow {gid} ({spec.src}->{spec.dst}) places subflows on "
        f"plane(s) {', '.join(map(str, planes_used))}, spanning "
        f"shard(s) {', '.join(map(str, shard_ids))}"
    )


class _SpanningState:
    """Engine-side tracking of one spanning connection."""

    __slots__ = ("gid", "spec", "shards", "complete", "record", "prev_acked")

    def __init__(self, gid: int, spec: FlowSpec, shards: Tuple[int, ...]):
        self.gid = gid
        self.spec = spec
        self.shards = shards
        self.complete = False
        self.record: Optional[SimFlowRecord] = None
        #: ACK progress per shard at the previous barrier -- the deltas
        #: are the measured per-shard throughput the rebalance targets.
        self.prev_acked: List[int] = [0] * len(shards)


def run_packet_trial(
    planes: Union[PNet, Sequence[Topology]],
    specs: Sequence[FlowSpec],
    *,
    shards: Optional[int] = None,
    epoch: Optional[float] = None,
    lookahead: Optional[float] = None,
    backend: Optional[str] = None,
    schedule=None,
    until: float = math.inf,
    obs=None,
    checkpoint_dir=None,
    checkpoint_every: Optional[float] = None,
    resume: bool = False,
    checkpoint_keep_last: Optional[int] = None,
    trace_barriers: bool = False,
    control: Optional[Any] = None,
    serial_fallback: bool = False,
    **sim_kwargs: Any,
) -> ShardResult:
    """Run a packet-level trial, sharded by plane.

    Args:
        planes: the dataplanes (or a :class:`PNet`).
        specs: flows in submission order; their position is the global
            flow id on the returned records.
        shards: worker count; defaults to ``PNET_SHARDS`` (clamped to
            the plane count).  ``1`` -- or ``epoch=0`` -- runs the
            serial code path, byte-identical to a plain
            :class:`~repro.sim.network.PacketNetwork` run.
        epoch: barrier spacing in simulated seconds; defaults to
            ``PNET_EPOCH`` (else :data:`~repro.shard.partition.
            DEFAULT_EPOCH`).  Only spanning MPTCP connections feel it.
        lookahead: conservative-PDES lookahead in simulated seconds;
            defaults to ``PNET_LOOKAHEAD``, else it is derived as the
            minimum spanning-path RTT.  Barrier rounds are batched to
            ``max(1, floor(lookahead / epoch))`` epochs per digest
            exchange; ``0`` forces one exchange per epoch.
        backend: ``"local"``, ``"process"`` or ``"shm"`` channel
            backend; defaults to ``PNET_SHARD_BACKEND`` (else ``shm``
            where shared memory is available).
        schedule: optional iterable of fault events, routed to the
            owning shards (dataplane semantics only -- injector-style
            resteering is cross-plane and must stay serial).
        until: simulated-time horizon (default: run to completion).
        obs: telemetry registry absorbing the per-shard registries in
            shard order; defaults to the process-wide registry.
        checkpoint_dir: root for ``repro.ckpt`` snapshots.  With
            ``checkpoint_every``, a checkpoint is written at the first
            epoch barrier at or past each multiple of that many
            simulated seconds (workers are quiescent at barriers, so
            the cut is globally consistent).
        checkpoint_every: checkpoint spacing in simulated seconds.
        resume: load the newest valid checkpoint under
            ``checkpoint_dir`` and continue from its barrier; a fresh
            start when none exists.  The shard count must match the
            checkpointed run.
        checkpoint_keep_last: prune to the newest N checkpoints after
            each write (default: keep all).
        trace_barriers: record every barrier as ``(t, jumped)`` on the
            result (test/diagnostic aid; off by default to keep long
            runs lean).
        control: a :class:`repro.control.Controller`, policy object, or
            policy name enabling the adaptive control plane.  Serial
            runs attach the controller's own loop; multi-shard runs
            drive the same policy/monitor objects at lookahead barriers
            (sample + apply travel as extra digest-style messages), so
            adaptive workloads no longer force ``serial_fallback``.
        serial_fallback: instead of raising :class:`ShardSafetyError`
            for workloads that cannot shard safely (completion
            callbacks, non-integer spanning sizes), fall back to the
            serial path and record it on the ``shard.serial_fallback``
            counter.
        sim_kwargs: forwarded to ``PacketNetwork`` (queue_packets, mss,
            min_rto, ecn_threshold).

    Raises:
        ShardSafetyError: multi-shard run with completion callbacks
            (closed-loop workloads cannot shard) or non-integer
            spanning flow sizes -- unless ``serial_fallback=True``.
    """
    planes = _as_planes(planes)
    specs = list(specs)
    epoch = get_epoch(epoch)
    n_shards = min(get_shards(shards), len(planes))
    if epoch == 0:
        n_shards = 1
    obs = obs if obs is not None else get_registry()
    events = _check_schedule(schedule, len(planes))
    plan = ShardPlan.build(len(planes), n_shards)
    backend = get_backend(backend) if plan.n_shards > 1 else "local"
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be > 0, got {checkpoint_every}"
            )
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires checkpoint_dir")

    if plan.n_shards == 1:
        return _run_serial_packet(
            planes, specs, events, until, obs, epoch, sim_kwargs,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
            checkpoint_keep_last=checkpoint_keep_last,
            control=control,
        )

    with_callbacks = [
        gid for gid, spec in enumerate(specs)
        if spec.on_complete is not None
    ]
    if with_callbacks:
        if serial_fallback:
            _serial_fallback("packet.on_complete", obs)
            return _run_serial_packet(
                planes, specs, events, until, obs, epoch, sim_kwargs,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                resume=resume,
                checkpoint_keep_last=checkpoint_keep_last,
                control=control,
            )
        raise ShardSafetyError(
            f"flow {with_callbacks[0]} "
            f"({specs[with_callbacks[0]].src}->"
            f"{specs[with_callbacks[0]].dst}) carries a completion "
            "callback, which cannot run under PNET_SHARDS > 1: the "
            "engine only sees flow completion at epoch barriers, so "
            "closed-loop workloads must run serial -- pass "
            "serial_fallback=True (or shards=1) to run this workload "
            "on the serial path"
        )

    local, spanning_gids = classify(specs, plan)
    spanning: Dict[int, _SpanningState] = {}
    shares: Dict[int, Dict[int, int]] = {}
    for gid in spanning_gids:
        spec = specs[gid]
        size = int(spec.size)
        if size != spec.size:
            if serial_fallback:
                _serial_fallback("packet.fractional_spanning", obs)
                return _run_serial_packet(
                    planes, specs, events, until, obs, epoch, sim_kwargs,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    resume=resume,
                    checkpoint_keep_last=checkpoint_keep_last,
                    control=control,
                )
            raise ShardSafetyError(
                f"spanning {_describe_spanning(gid, spec, plan)}, but "
                f"has non-integer size {spec.size!r}: the shared pool "
                "splits whole bytes across shards -- round the size, "
                "pass serial_fallback=True, or run with shards=1"
            )
        shard_ids = plan.shards_of(spec)
        counts = [
            len(plan.local_paths(spec, shard)) for shard in shard_ids
        ]
        split = split_bytes(size, counts)
        spanning[gid] = _SpanningState(gid, spec, shard_ids)
        shares[gid] = dict(zip(shard_ids, split))

    driver = None
    if control is not None:
        from repro.control import as_controller
        from repro.control.sharded import ShardControlDriver

        driver = ShardControlDriver(
            as_controller(control),
            planes,
            plane_shard={
                plane: shard
                for shard in range(plan.n_shards)
                for plane in plan.planes_of_shard[shard]
            },
            flow_shard={
                gid: shard
                for shard in range(plan.n_shards)
                for gid in local[shard]
            },
            spanning_gids=set(spanning_gids),
        )

    collect_obs = obs.enabled
    stripped = _strip_callbacks(specs)
    configs = []
    for shard in range(plan.n_shards):
        owned = set(local[shard])
        entries = [
            (gid, stripped[gid])
            for gid in range(len(specs))
            if gid in owned
            or (gid in spanning and shard in spanning[gid].shards)
        ]
        configs.append(WorkerConfig(
            shard=shard,
            plan=plan,
            planes=planes,
            engine="packet",
            sim_kwargs=dict(sim_kwargs),
            entries=entries,
            spanning_share={
                gid: shares[gid][shard]
                for gid in spanning
                if shard in spanning[gid].shards
            },
            fault_events=tuple(
                e for e in events
                if e.plane in plan.planes_of_shard[shard]
            ),
            collect_obs=collect_obs,
        ))

    restored = (
        _load_shard_checkpoint(checkpoint_dir, plan.n_shards)
        if resume else None
    )
    if restored is not None:
        for config, blob in zip(configs, restored["workers"]):
            config.restore_blob = blob

    # Conservative lookahead: coupling digests cannot change faster
    # than one spanning-path RTT, so one digest exchange may safely
    # cover several epochs (the epoch stays the staleness quantum; the
    # stride only batches the exchanges).
    la = get_lookahead(lookahead)
    if la is None:
        la = derive_lookahead(planes, specs, spanning_gids)
    stride = epochs_per_sync(la, epoch)
    sync_dt = epoch * stride

    checkpointing = checkpoint_every is not None
    barriers: Optional[List[Tuple[float, bool]]] = (
        [] if trace_barriers else None
    )
    all_shards = set(range(plan.n_shards))
    freed: set = set()

    channels = _make_channels(configs, backend)
    try:
        if restored is None:
            for ch in channels:
                ch.post(("digest",))
            digests = [ch.collect()[1] for ch in channels]
            rounds = 0
            t = 0.0
        else:
            engine_state = restored["engine"]
            digests = engine_state["digests"]
            rounds = engine_state["rounds"]
            t = engine_state["t"]
            spanning = engine_state["spanning"]
            shares = engine_state["shares"]
            if driver is not None and engine_state.get("control") is not None:
                driver.restore(engine_state["control"])
        ckpt_next = (
            (math.floor(t / checkpoint_every) + 1) * checkpoint_every
            if checkpoint_every is not None else math.inf
        )
        while True:
            if rounds > MAX_ROUNDS:
                raise RuntimeError(
                    f"shard engine exceeded {MAX_ROUNDS} barrier rounds "
                    f"(simulated t={t}); is a spanning flow stuck on a "
                    "dead path?"
                )
            if driver is not None and driver.due(t):
                # One control cycle at this barrier: workers are
                # quiescent, so the sampled ACK counters are exact when
                # the apply batches land in the same exchange.
                for ch in channels:
                    ch.post(("control-sample",))
                samples = {
                    shard: ch.collect()[1]
                    for shard, ch in enumerate(channels)
                }
                batches = driver.tick(t, samples)
                for shard in sorted(batches):
                    batch = batches[shard]
                    channels[shard].post((
                        "control-apply",
                        batch["aborts"],
                        batch["launches"],
                    ))
                for shard in sorted(batches):
                    reply = channels[shard].collect()[1]
                    # Relaunches schedule new events at t; refresh the
                    # idle-jump view so the next stride sees them.
                    digests[shard]["next"] = reply["next"]
            updates: List[Dict[str, Any]] = [
                {"views": {}, "grants": {}, "finalize": []}
                for __ in range(plan.n_shards)
            ]
            any_grants = False
            incomplete = 0
            coupled: set = set()
            for gid in spanning_gids:
                state = spanning[gid]
                if state.complete:
                    continue
                parts = [
                    digests[shard]["flows"][gid] for shard in state.shards
                ]
                pool = sum(part["remaining"] for part in parts)
                if pool == 0 and all(part["drained"] for part in parts):
                    state.complete = True
                    state.record = _compose_record(gid, state.spec, parts)
                    for shard in state.shards:
                        updates[shard]["finalize"].append(gid)
                    continue
                incomplete += 1
                coupled.update(state.shards)
                moves = _rebalance(parts, state.shards, state.prev_acked)
                state.prev_acked = [part["acked"] for part in parts]
                for shard, delta in moves:
                    updates[shard]["grants"][gid] = delta
                    any_grants = True
                for shard in state.shards:
                    remote = [
                        pair
                        for other, part in zip(state.shards, parts)
                        if other != shard
                        for pair in part["subflows"]
                    ]
                    updates[shard]["views"][gid] = lia_terms(remote)

            finalizing = any(u["finalize"] for u in updates)
            if checkpointing or driver is not None:
                # Consistent cuts need *every* worker quiescent at the
                # barrier, so nobody free-runs while checkpoints may be
                # written; control likewise samples and steers every
                # shard, so nobody may run ahead of the control clock.
                need = set(all_shards)
            else:
                # A worker holding no incomplete spanning slice and no
                # pending update exchanges nothing with anyone: promote
                # it to free-running (one unbounded run, collected at
                # shutdown).  Exact, not an approximation -- its planes
                # share no state with the barriered ones.
                need = coupled | {
                    shard
                    for shard in all_shards
                    if updates[shard]["views"]
                    or updates[shard]["grants"]
                    or updates[shard]["finalize"]
                }
                for shard in sorted(all_shards - need - freed):
                    channels[shard].post((
                        "run",
                        None if math.isinf(until) else until,
                        {},
                    ))
                    freed.add(shard)
                if not need:
                    break

            # Idle jumps and stall detection steer by the workers that
            # can still influence coupling; in checkpoint mode the
            # uncoupled workers keep barriering (for the cut) but must
            # not steer t, or the coupled barrier sequence -- and with
            # it the results -- would differ from an uncheckpointed run.
            steer = sorted(coupled) if coupled else sorted(
                all_shards - freed
            )
            nexts = [
                digests[shard]["next"]
                for shard in steer
                if digests[shard]["next"] is not None
            ]
            if not nexts and not any_grants and not finalizing:
                if incomplete:
                    raise RuntimeError(
                        f"shard engine stalled at t={t}: {incomplete} "
                        "spanning connection(s) incomplete but no worker "
                        "has pending events"
                    )
                break
            if t >= until:
                break
            t_next = t + sync_dt
            jumped = False
            if not any_grants and nexts and min(nexts) > t_next:
                # Every steering worker is idle past the next barrier
                # and no revival is in flight: digests cannot change
                # while idle, so jumping straight to the next real
                # event is exact, not an approximation.
                t_next = min(nexts)
                jumped = True
            t_next = min(t_next, until)
            if driver is not None:
                # Strides (and idle jumps) never skip a control instant.
                t_next = driver.clamp(t_next)
            for shard in sorted(need):
                channels[shard].post(("run", t_next, updates[shard]))
            for shard in sorted(need):
                digests[shard] = channels[shard].collect()[1]
            if barriers is not None:
                barriers.append((t_next, jumped))
            t = t_next
            rounds += 1
            if t >= ckpt_next:
                _write_shard_checkpoint(
                    checkpoint_dir, channels, t, rounds, digests,
                    spanning, shares, plan, epoch, backend,
                    keep_last=checkpoint_keep_last,
                    control_state=(
                        driver.state() if driver is not None else None
                    ),
                )
                ckpt_next = (
                    math.floor(t / checkpoint_every) + 1
                ) * checkpoint_every

        for shard in sorted(freed):
            # The free-run grant's digest reply is still in flight;
            # drain it so the stop request pairs with the right reply.
            channels[shard].collect()
        for ch in channels:
            ch.post(("stop",))
        results = [ch.collect()[1] for ch in channels]
    finally:
        _close_all(channels)

    records: List[Any] = []
    plane_totals: Dict[int, Dict[str, int]] = {}
    events_processed = 0
    for result in results:
        records.extend(result["records"])
        plane_totals.update(result["plane_totals"])
        events_processed += result["events_processed"]
        if collect_obs and result["obs"] is not None:
            obs.absorb(result["obs"])
    for gid in spanning_gids:
        state = spanning[gid]
        if state.record is not None:
            records.append(state.record)
            if collect_obs:
                _publish_flow_obs(obs, state.record)
    records.sort(key=lambda r: r.flow_id)
    return ShardResult(
        records=records,
        n_shards=plan.n_shards,
        epoch=epoch,
        backend=backend,
        rounds=rounds,
        events_processed=events_processed,
        plane_totals=plane_totals,
        lookahead=la,
        stride=stride,
        barriers=barriers,
        control=(
            {
                "fingerprint": driver.fingerprint(),
                "stats": driver.stats.as_dict(),
            }
            if driver is not None else None
        ),
    )


def _rebalance(
    parts: List[Dict[str, Any]],
    shards: Tuple[int, ...],
    prev_acked: List[int],
) -> List[Tuple[int, int]]:
    """Pool deltas for one spanning connection at one barrier.

    The serial scheduler keeps one shared pool that every subflow pulls
    from as its window opens, so byte placement tracks each path's
    *achieved* throughput and all subflows drain within about an RTT of
    each other.  Each barrier re-places the still-unpulled pool bytes
    the same way: every shard keeps a *floor* of its immediate window
    demand plus one full cwnd of float -- the demand term is exactly
    the serial pull (and dominates as ``epoch -> 0``), while the cwnd
    float keeps fast recovery fed with new data mid-epoch (recovery
    with nothing new to send cannot clock ACKs and stalls into a full
    RTO) -- and the surplus above all floors is placed proportional to
    the bytes each shard actually ACKed since the last barrier, which
    equalizes the shards' remaining completion time the way a shared
    pool does.  Congested or faulted paths ACK little and automatically
    shed their backlog to healthy shards.

    All splits are exact integer largest-remainder, so the pool is
    conserved byte-for-byte and placement is deterministic.  Only
    unpulled pool bytes ever move; in-flight data stays put.
    """
    remaining = [part["remaining"] for part in parts]
    pool = sum(remaining)
    if pool == 0:
        return []
    rates = [
        max(0, part["acked"] - prev)
        for part, prev in zip(parts, prev_acked)
    ]
    if sum(rates) == 0:
        # No throughput signal yet (first barrier, or nothing ACKed
        # this epoch): keep the current split.
        return []
    floors = [
        part["demand"]
        + int(math.ceil(sum(c for c, __ in part["subflows"])))
        for part in parts
    ]
    # Every shard keeps its open-window demand plus the window of any
    # subflow in fast recovery untouched: clawing a recovering subflow's
    # new-data float leaves it nothing to clock ACKs with and stalls it
    # into a full RTO.  Bytes above protection are free to re-place:
    # proportional to the floors when the pool is scarce (the live
    # window state -- a shard whose windows collapsed sheds its backlog
    # to the still-growing shards, which is the serial pull at barrier
    # granularity), and proportional to measured ACK throughput when
    # the pool still exceeds all floors (equalizing remaining
    # completion time the way one shared pool does).
    protected = [
        min(have, part["demand"] + part["recovery_cwnd"])
        for have, part in zip(remaining, parts)
    ]
    if sum(floors) >= pool:
        # Scarce pool: re-place everything proportional to the floors
        # (the live window state -- a shard whose windows collapsed
        # sheds its backlog to the still-growing shards; this is the
        # serial pull at barrier granularity).
        targets = largest_remainder(pool, floors)
    else:
        # Surplus: floors first, then the rest proportional to
        # measured ACK throughput, equalizing the shards' remaining
        # completion time the way one shared pool does.
        surplus = largest_remainder(pool - sum(floors), rates)
        targets = [f + s for f, s in zip(floors, surplus)]
    # Respect the protections: raise any shard below its protected
    # holding back up to it, taking the difference from shards with
    # slack above their own protection.
    raises = [max(0, p - t) for p, t in zip(protected, targets)]
    if sum(raises):
        slack = [max(0, t - p) for p, t in zip(protected, targets)]
        move = min(sum(raises), sum(slack))
        gives = largest_remainder(move, raises)
        takes = largest_remainder(move, slack)
        targets = [
            t + g - c for t, g, c in zip(targets, gives, takes)
        ]
    return [
        (shard, target - have)
        for shard, target, have in zip(shards, targets, remaining)
        if target != have
    ]


def _compose_record(
    gid: int, spec: FlowSpec, parts: List[Dict[str, Any]]
) -> SimFlowRecord:
    """Stitch one spanning connection's record from its shard digests."""
    return SimFlowRecord(
        flow_id=gid,
        src=spec.src,
        dst=spec.dst,
        size=int(spec.size),
        start=0.0 if spec.at is None else spec.at,
        finish=max(part["drain_time"] for part in parts),
        n_subflows=len(spec.paths),
        retransmits=sum(part["retransmits"] for part in parts),
        packets_sent=sum(part["packets_sent"] for part in parts),
        tag=spec.tag,
        planes=spec.planes,
    )


def _publish_flow_obs(obs, record: SimFlowRecord) -> None:
    """Per-plane flow counters for an engine-composed spanning record.

    Mirrors ``PacketNetwork``'s completion-time attribution (even byte
    split across planes) so merged telemetry covers every flow exactly
    once: local flows count inside their worker, spanning flows here.
    """
    share = record.size / len(record.planes)
    for plane in record.planes:
        obs.counter("net.flow.bytes", plane=plane).inc(share)
        obs.counter("net.flows", plane=plane).inc()
        obs.histogram("net.fct_seconds", plane=plane).observe(record.fct)


def _serial_control_rekey(worker, old_fid: int, new_fid: int) -> None:
    """Extend a serial worker's gid table across a control resteer.

    Fresh flow ids are assigned densely, so the relaunch's id is always
    the next index; it inherits the original flow's global id, matching
    the multi-shard engine's stable-gid records.
    """
    worker._local_gids.append(worker._local_gids[old_fid])


def _run_serial_packet(
    planes, specs, events, until, obs, epoch, sim_kwargs,
    checkpoint_dir=None, checkpoint_every=None, resume=False,
    checkpoint_keep_last=None, control=None,
) -> ShardResult:
    """One-shard path: the literal serial simulator, no barriers.

    Flows keep their completion callbacks and the caller's registry is
    used directly, so a ``PNET_SHARDS=1`` run is byte-identical to a
    plain ``PacketNetwork`` run of the same workload.  Checkpoints use
    the same ``kind="shard"`` container as the multi-shard path (one
    worker payload), so resume works across either entry.
    """
    plan = ShardPlan.build(len(planes), 1)
    restored = (
        _load_shard_checkpoint(checkpoint_dir, 1) if resume else None
    )
    config = WorkerConfig(
        shard=0,
        plan=plan,
        planes=list(planes),
        engine="packet",
        sim_kwargs=dict(sim_kwargs),
        entries=list(enumerate(specs)),
        fault_events=events,
        collect_obs=False,
        obs_registry=obs if restored is None else None,
        restore_blob=restored["workers"][0] if restored else None,
    )
    worker = build_worker(config)
    if control is not None and restored is None:
        from repro.control import as_controller

        controller = as_controller(control)
        controller.attach(worker.net)
        # Serial resteers assign fresh flow ids; keep the worker's
        # gid table covering them so result() re-keys records.  A
        # partial over a module function, so the hook rides the
        # worker's checkpoint pickle.
        controller.on_rekey = functools.partial(_serial_control_rekey, worker)
        # The attached loop rides the worker's pickle graph, so shard
        # checkpoints resume it without extra plumbing.
        worker.net._controller = controller
    t = restored["engine"]["t"] if restored else 0.0
    if checkpoint_every is None:
        worker.advance(until)
    else:
        while True:
            t_next = (
                math.floor(t / checkpoint_every) + 1
            ) * checkpoint_every
            if t_next >= until:
                worker.advance(until)
                break
            worker.advance(t_next)
            t = t_next
            if _next_event_time(worker.net.loop) is None:
                break
            payloads = {
                "shard-00.pkl": pickle.dumps(
                    worker, protocol=pickle.HIGHEST_PROTOCOL
                ),
                "engine.pkl": pickle.dumps(
                    {
                        "t": t,
                        "rounds": 0,
                        "digests": [],
                        "spanning": {},
                        "shares": {},
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            }
            meta = {
                "kind": KIND_SHARD,
                "engine": "packet",
                "t": t,
                "rounds": 0,
                "n_shards": 1,
                "epoch": epoch,
                "backend": "local",
            }
            write_checkpoint(
                step_dir(checkpoint_dir, next_step(checkpoint_dir)),
                payloads,
                meta,
            )
            if checkpoint_keep_last is not None:
                prune(checkpoint_dir, checkpoint_keep_last)
    result = worker.result()
    if restored is not None and obs.enabled and worker.obs is not obs:
        # The restored worker continued on its checkpointed registry
        # (which holds the pre-checkpoint counters); fold the whole
        # run's telemetry into the caller's registry.
        obs.absorb(worker.obs.export_state())
    records = sorted(result["records"], key=lambda r: r.flow_id)
    attached = getattr(worker.net, "_controller", None)
    return ShardResult(
        records=records,
        n_shards=1,
        epoch=epoch,
        backend="local",
        rounds=0,
        events_processed=result["events_processed"],
        plane_totals=result["plane_totals"],
        control=(
            {
                "fingerprint": attached.fingerprint(),
                "stats": attached.stats.as_dict(),
            }
            if attached is not None else None
        ),
    )


def run_fluid_trial(
    planes: Union[PNet, Sequence[Topology]],
    specs: Sequence[FlowSpec],
    *,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    until: Optional[float] = None,
    obs=None,
    control: Optional[Any] = None,
    serial_fallback: bool = False,
    **sim_kwargs: Any,
) -> ShardResult:
    """Run a fluid-model trial, sharded by plane (exact decomposition).

    Plane-local fluid flows share no links across planes, so each
    shard's max-min solve is independent and there are no epochs --
    workers run straight to the horizon.  Spanning flows (an MPTCP
    connection allocated across shards) couple through the global
    allocation and raise :class:`ShardSafetyError`; run those with
    ``shards=1`` or the packet engine.  ``control=`` (adaptive
    resteering) migrates flows across planes continuously, so it runs
    serial here -- only the packet engine has the barrier protocol for
    shard-safe control; ``serial_fallback=True`` downgrades any of
    these refusals to a counted serial run.
    """
    planes = _as_planes(planes)
    specs = list(specs)
    n_shards = min(get_shards(shards), len(planes))
    obs = obs if obs is not None else get_registry()
    plan = ShardPlan.build(len(planes), n_shards)
    backend = get_backend(backend) if plan.n_shards > 1 else "local"

    if plan.n_shards == 1:
        return _run_serial_fluid(
            planes, specs, until, obs, sim_kwargs, control=control
        )

    if control is not None:
        if serial_fallback:
            _serial_fallback("fluid.control", obs)
            return _run_serial_fluid(
                planes, specs, until, obs, sim_kwargs, control=control
            )
        raise ShardSafetyError(
            "adaptive control migrates fluid flows across planes "
            "continuously, which cannot run under PNET_SHARDS > 1: "
            "pass serial_fallback=True (or shards=1) to run control on "
            "the serial path, or use the packet engine's shard-safe "
            "control path (run_packet_trial(control=...))"
        )

    __, spanning_gids = classify(specs, plan)
    if spanning_gids:
        if serial_fallback:
            _serial_fallback("fluid.spanning", obs)
            return _run_serial_fluid(
                planes, specs, until, obs, sim_kwargs, control=control
            )
        first = spanning_gids[0]
        raise ShardSafetyError(
            f"{len(spanning_gids)} flow(s) span multiple shards under "
            f"{plan.n_shards} shards -- e.g. spanning "
            f"{_describe_spanning(first, specs[first], plan)}; the "
            "fluid model couples them through the global max-min solve. "
            "Pass serial_fallback=True, run with shards=1, or use the "
            "packet engine."
        )
    if any(spec.on_complete is not None for spec in specs):
        if serial_fallback:
            _serial_fallback("fluid.on_complete", obs)
            return _run_serial_fluid(
                planes, specs, until, obs, sim_kwargs, control=control
            )
        raise ShardSafetyError(
            "completion callbacks cannot run under PNET_SHARDS > 1 "
            "(closed-loop workloads must run serial) -- pass "
            "serial_fallback=True or shards=1"
        )

    local, __ = classify(specs, plan)
    collect_obs = obs.enabled
    stripped = _strip_callbacks(specs)
    configs = [
        WorkerConfig(
            shard=shard,
            plan=plan,
            planes=planes,
            engine="fluid",
            sim_kwargs=dict(sim_kwargs),
            entries=[(gid, stripped[gid]) for gid in local[shard]],
            collect_obs=collect_obs,
        )
        for shard in range(plan.n_shards)
    ]
    channels = _make_channels(configs, backend)
    try:
        # Post the single run-to-horizon to every worker before
        # collecting any reply: the workers solve their planes in
        # parallel, not one after another.
        for ch in channels:
            ch.post(("run", until, {}))
        for ch in channels:
            ch.collect()
        for ch in channels:
            ch.post(("stop",))
        results = [ch.collect()[1] for ch in channels]
    finally:
        _close_all(channels)

    records: List[Any] = []
    events_processed = 0
    delivered = 0.0
    for result in results:
        records.extend(result["records"])
        events_processed += result["events_processed"]
        delivered += result["delivered_bytes"]
        if collect_obs and result["obs"] is not None:
            obs.absorb(result["obs"])
    records.sort(key=lambda r: r.flow_id)
    return ShardResult(
        records=records,
        n_shards=plan.n_shards,
        epoch=0.0,
        backend=backend,
        rounds=1,
        events_processed=events_processed,
        delivered_bytes=delivered,
    )


def _run_serial_fluid(
    planes, specs, until, obs, sim_kwargs, control=None
) -> ShardResult:
    from repro.fluid.flowsim import FluidSimulator

    sim = FluidSimulator(planes, obs=obs, **sim_kwargs)
    controller = None
    if control is not None:
        from repro.control import as_controller

        controller = as_controller(control)
        controller.attach(sim)
    gid_of = {}
    for gid, spec in enumerate(specs):
        gid_of[sim.add_flow(spec=spec)] = gid
    sim.run(until=until)
    for record in sim.records:
        record.flow_id = gid_of[record.flow_id]
    records = sorted(sim.records, key=lambda r: r.flow_id)
    return ShardResult(
        records=records,
        n_shards=1,
        epoch=0.0,
        backend="local",
        rounds=0,
        events_processed=sim.events_processed,
        delivered_bytes=sim.delivered_bytes,
        control=(
            {
                "fingerprint": controller.fingerprint(),
                "stats": controller.stats.as_dict(),
            }
            if controller is not None else None
        ),
    )
