"""Plane-sharded parallel simulation (:mod:`repro.shard`).

The paper's N dataplanes are disjoint in the core and meet only at the
hosts, so the plane index is a parallel-decomposition boundary: this
package partitions a P-Net by dataplane (``PNET_SHARDS`` workers),
runs one simulator per shard, and advances all shards in lockstep
*epochs* of simulated time, exchanging only the cross-plane state the
model actually has -- MPTCP's LIA coupling terms and the shared
send-buffer pool of spanning connections -- as compact digests at each
barrier.

Entry points:

* :func:`run_packet_trial` -- epoch-synced packet simulation with
  conservative-PDES lookahead (barrier rounds batched up to the
  minimum spanning-path RTT; uncoupled workers free-run).
* :func:`run_fluid_trial` -- exact (barrier-free) fluid decomposition.
* ``PNET_SHARDS`` / ``PNET_EPOCH`` / ``PNET_LOOKAHEAD`` /
  ``PNET_SHARD_BACKEND`` / ``PNET_SHARD_TIMEOUT`` environment knobs,
  resolved by :func:`get_shards` / :func:`get_epoch` /
  :func:`get_lookahead` / :func:`get_backend` / :func:`get_timeout`.

Guarantees: ``PNET_SHARDS=1`` (or ``epoch=0``) is byte-identical to
the pre-shard serial simulators; multi-shard results are deterministic
for a given shard count and identical across the local and process
channel backends; plane-local flows are unaffected by sharding, and
only spanning MPTCP connections see the epoch-staleness approximation
(bounded, and converging to serial as ``epoch -> 0``).
"""

from repro.shard.channel import (
    ShardWorkerError,
    get_backend,
    get_timeout,
)
from repro.shard.engine import (
    ShardResult,
    ShardSafetyError,
    run_fluid_trial,
    run_packet_trial,
)
from repro.shard.lookahead import derive_lookahead, epochs_per_sync
from repro.shard.partition import (
    DEFAULT_EPOCH,
    ShardPlan,
    classify,
    get_epoch,
    get_lookahead,
    get_shards,
    serial_fallback,
)

__all__ = [
    "DEFAULT_EPOCH",
    "ShardPlan",
    "ShardResult",
    "ShardSafetyError",
    "ShardWorkerError",
    "classify",
    "derive_lookahead",
    "epochs_per_sync",
    "get_backend",
    "get_epoch",
    "get_lookahead",
    "get_shards",
    "get_timeout",
    "run_fluid_trial",
    "run_packet_trial",
    "serial_fallback",
]
