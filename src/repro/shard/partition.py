"""Plane partitioning for the sharded simulation engine.

The paper's dataplanes are fully disjoint in the core and meet only at
host endpoints, so the plane index is a natural parallel-decomposition
boundary: a :class:`ShardPlan` assigns each plane to exactly one shard
(contiguous balanced blocks), and every flow is then either *local* to
one shard (all its paths live on that shard's planes) or *spanning*
(an MPTCP connection whose subflows straddle shards and therefore
needs the epoch-coupling protocol in :mod:`repro.shard.coupling`).

Shard count and epoch length resolve from ``PNET_SHARDS`` /
``PNET_EPOCH`` unless overridden programmatically, mirroring how
``PNET_JOBS`` works for the trial-level runner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.flowspec import FlowSpec

#: Default epoch barrier spacing (simulated seconds).  A handful of
#: fabric RTTs: long enough to amortise barrier cost, short enough that
#: LIA coupling staleness stays small (see tests/test_shard_coupling.py
#: for the empirically enforced bound).
DEFAULT_EPOCH = 1e-4


def get_shards(override: Optional[int] = None) -> int:
    """Resolve the shard count: explicit override, else ``PNET_SHARDS``."""
    if override is None:
        raw = os.environ.get("PNET_SHARDS", "1")
        try:
            override = int(raw)
        except ValueError:
            raise ValueError(
                f"PNET_SHARDS must be an integer, got {raw!r}"
            ) from None
    if override < 1:
        raise ValueError(f"shard count must be >= 1, got {override}")
    return override


def serial_fallback(feature: str, obs=None) -> int:
    """Resolve shards to 1 for a workload that cannot shard safely.

    Control-plane behaviours -- route repair, flow resteering, global
    fluid max-min over spanning flows -- are inherently cross-plane, so
    experiments built on them run serial regardless of ``PNET_SHARDS``.
    When the user *asked* for shards, the fallback is recorded on the
    ``shard.serial_fallback`` counter (labelled with the feature) so a
    silently-serial run is visible in telemetry rather than a mystery
    slowdown.  Returns 1, the effective shard count.
    """
    if get_shards() > 1:
        if obs is None:
            from repro.obs import get_registry

            obs = get_registry()
        obs.counter("shard.serial_fallback", feature=feature).inc()
    return 1


def get_epoch(override: Optional[float] = None) -> float:
    """Resolve the epoch length: explicit override, else ``PNET_EPOCH``.

    ``0`` is legal and means "no staleness allowed": the engine falls
    back to the serial single-loop path, which is byte-identical to the
    pre-shard simulator.
    """
    if override is None:
        raw = os.environ.get("PNET_EPOCH", "")
        if not raw:
            return DEFAULT_EPOCH
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_EPOCH must be a number, got {raw!r}"
            ) from None
    if override < 0:
        raise ValueError(f"epoch must be >= 0, got {override}")
    return override


def get_lookahead(override: Optional[float] = None) -> Optional[float]:
    """Resolve the barrier lookahead: override, else ``PNET_LOOKAHEAD``.

    Returns ``None`` for "auto" (unset, empty, or the literal string
    ``auto``): the engine derives the lookahead from the minimum
    cross-plane path RTT of the spanning connections (see
    :func:`repro.shard.lookahead.derive_lookahead`).  ``0`` disables
    barrier batching (one digest exchange per epoch, the pre-lookahead
    behaviour); a positive value is an explicit lookahead in simulated
    seconds.
    """
    if override is None:
        raw = os.environ.get("PNET_LOOKAHEAD", "").strip()
        if not raw or raw == "auto":
            return None
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"PNET_LOOKAHEAD must be a number or 'auto', got {raw!r}"
            ) from None
    if override < 0:
        raise ValueError(f"lookahead must be >= 0, got {override}")
    return override


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of plane indices to shards (contiguous balanced blocks).

    Contiguous blocks keep the mapping trivially deterministic and give
    each shard the same number of planes +/- 1, which is the right
    balance for the paper's homogeneous dataplanes.
    """

    n_planes: int
    planes_of_shard: Tuple[Tuple[int, ...], ...]

    @classmethod
    def build(cls, n_planes: int, n_shards: int) -> "ShardPlan":
        if n_planes < 1:
            raise ValueError(f"need >= 1 plane, got {n_planes}")
        if n_shards < 1:
            raise ValueError(f"need >= 1 shard, got {n_shards}")
        # More shards than planes would leave empty workers; clamp.
        n_shards = min(n_shards, n_planes)
        base, extra = divmod(n_planes, n_shards)
        blocks: List[Tuple[int, ...]] = []
        start = 0
        for shard in range(n_shards):
            width = base + (1 if shard < extra else 0)
            blocks.append(tuple(range(start, start + width)))
            start += width
        return cls(n_planes=n_planes, planes_of_shard=tuple(blocks))

    @property
    def n_shards(self) -> int:
        return len(self.planes_of_shard)

    def shard_of(self, plane: int) -> int:
        """Owning shard of a plane index."""
        if not 0 <= plane < self.n_planes:
            raise ValueError(
                f"plane {plane} out of range for {self.n_planes} planes"
            )
        for shard, planes in enumerate(self.planes_of_shard):
            if plane in planes:
                return shard
        raise AssertionError("unreachable: contiguous blocks cover all planes")

    def shards_of(self, spec: FlowSpec) -> Tuple[int, ...]:
        """Sorted shard indices touched by a flow's paths."""
        return tuple(sorted({self.shard_of(p) for p, __ in spec.paths}))

    def is_spanning(self, spec: FlowSpec) -> bool:
        """True when the flow's subflows straddle more than one shard."""
        return len(self.shards_of(spec)) > 1

    def local_paths(
        self, spec: FlowSpec, shard: int
    ) -> List[Tuple[int, Tuple[int, List[str]]]]:
        """The subset of ``spec.paths`` owned by ``shard``.

        Returns ``(subflow_index, plane_path)`` pairs so a spanning
        connection's digests can be stitched back together in the
        original subflow order.
        """
        owned = self.planes_of_shard[shard]
        return [
            (i, path) for i, path in enumerate(spec.paths) if path[0] in owned
        ]


def classify(
    specs: Sequence[FlowSpec], plan: ShardPlan
) -> Tuple[Dict[int, List[int]], List[int]]:
    """Split flows into per-shard local lists and a spanning list.

    Returns ``(local, spanning)`` where ``local[shard]`` is the list of
    global flow indices fully owned by that shard (in submission order)
    and ``spanning`` is the list of global indices of multi-shard
    connections (in submission order).  Global index == position in
    ``specs`` == the flow id the merged records report.
    """
    local: Dict[int, List[int]] = {s: [] for s in range(plan.n_shards)}
    spanning: List[int] = []
    for gid, spec in enumerate(specs):
        shards = plan.shards_of(spec)
        if len(shards) == 1:
            local[shards[0]].append(gid)
        else:
            spanning.append(gid)
    return local, spanning
