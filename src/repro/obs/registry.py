"""Label-aware metrics registry: counters, gauges, histograms, timers.

The registry is the one stat surface every layer of the stack reports
into (paper section 7: operators "merge flow statistics from multiple
dataplanes to accurately describe the network state").  Instruments are
identified by a name plus a label set -- ``counter("sim.queue.drops",
plane=2)`` and ``plane=3`` are distinct series, exactly like Prometheus
labels -- so per-plane, per-experiment, and per-stage series coexist in
one namespace.

Design constraints, in priority order:

1. **Disabled must be free.**  The process-wide default registry is a
   :class:`NullRegistry`; its instruments are shared no-op singletons
   and its ``enabled`` flag lets hot paths skip instrumentation with a
   single attribute check.  Simulation results never depend on whether
   telemetry is on.
2. **Deterministic exports.**  Snapshots are sorted by (name, labels)
   and simulated-time metrics are kept separate from wall-clock timers
   (``wallclock=True`` histograms), so ``snapshot(include_wallclock=
   False)`` is byte-stable across runs and worker counts.
3. **Explicit injection beats globals.**  Every instrumented component
   takes an ``obs`` argument; the module-level default (see
   :func:`get_registry` / :func:`set_registry`) is only the fallback.
"""

from __future__ import annotations

import contextlib
import time
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.sinks import Sink
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.stats import Summary

LabelsKey = Tuple[Tuple[str, Any], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    """Canonical hashable form of a label set (sorted by label name)."""
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing value (events, bytes, drops)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, heap size, active flows)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``."""
        if value > self.value:
            self.value = value


class Histogram:
    """Sample distribution summarised at export time.

    Values are retained so percentiles come from
    :func:`repro.analysis.stats.summarize` -- the same estimator the
    experiment tables use -- rather than from fixed buckets.

    ``wallclock=True`` marks host-time measurements (profiling timers)
    that are excluded from deterministic snapshots.
    """

    __slots__ = ("name", "labels", "values", "wallclock")
    kind = "histogram"

    def __init__(
        self, name: str, labels: Dict[str, Any], wallclock: bool = False
    ):
        self.name = name
        self.labels = labels
        self.values: List[float] = []
        self.wallclock = wallclock

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Optional["Summary"]:
        # Imported here (export time, never the hot path) to keep
        # repro.obs importable from low-level modules like routing.ksp
        # without a circular package import through repro.analysis.
        from repro.analysis.stats import summarize

        return summarize(self.values) if self.values else None


class _Timer:
    """Context manager observing elapsed wall seconds into a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class Registry:
    """Process-wide (but explicitly injectable) telemetry registry.

    Args:
        tracer: optional bounded event tracer shared by instrumented
            components; ``registry.trace(...)`` routes to it.
        metric_sinks: sinks receiving metric snapshot rows on
            :meth:`flush`.
        trace_sinks: sinks receiving trace event rows on :meth:`flush`.
        enabled: master switch; hot paths check this once per run (or
            hold no-op instruments) so a disabled registry costs ~0.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metric_sinks: Optional[List[Sink]] = None,
        trace_sinks: Optional[List[Sink]] = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.tracer = tracer
        self.metric_sinks: List[Sink] = list(metric_sinks or [])
        self.trace_sinks: List[Sink] = list(trace_sinks or [])
        self._metrics: Dict[Tuple[str, str, LabelsKey], Any] = {}

    # --- instruments --------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, Any], **extra):
        key = (cls.kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **extra)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, wallclock: bool = False, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, wallclock=wallclock)

    def timer(self, name: str, **labels: Any) -> _Timer:
        """Scoped wall-clock timer: ``with obs.timer("lp.solve"): ...``.

        Observations land in a ``wallclock`` histogram, which keeps them
        out of deterministic snapshots.
        """
        return _Timer(self.histogram(name, wallclock=True, **labels))

    def trace(self, kind: str, t: float, **fields: Any) -> None:
        """Emit a trace event if a tracer is attached (else a no-op)."""
        if self.tracer is not None:
            self.tracer.emit(kind, t, **fields)

    # --- introspection ------------------------------------------------------

    def metrics(self) -> Iterator[Any]:
        """All instruments, sorted by (name, labels, kind)."""
        for key in sorted(
            self._metrics, key=lambda k: (k[1], k[2], k[0])
        ):
            yield self._metrics[key]

    def value(self, name: str, default: float = 0, **labels: Any) -> float:
        """Current value of a counter/gauge, without creating it."""
        for kind in ("counter", "gauge"):
            metric = self._metrics.get((kind, name, _labels_key(labels)))
            if metric is not None:
                return metric.value
        return default

    def samples(self, name: str, **labels: Any) -> List[float]:
        """Recorded observations of a histogram (empty if absent)."""
        metric = self._metrics.get(("histogram", name, _labels_key(labels)))
        return list(metric.values) if metric is not None else []

    def snapshot(self, include_wallclock: bool = True) -> List[Dict[str, Any]]:
        """Flat, deterministic rows for every instrument.

        With ``include_wallclock=False`` the rows contain only
        simulation-derived data and are byte-identical (once JSON
        encoded) for identical seeds at any worker count.
        """
        rows: List[Dict[str, Any]] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                if metric.wallclock and not include_wallclock:
                    continue
                row: Dict[str, Any] = {
                    "type": "metric",
                    "kind": metric.kind,
                    "name": metric.name,
                    "labels": dict(metric.labels),
                    "count": metric.count,
                    "sum": metric.total,
                }
                summary = metric.summary()
                if summary is not None:
                    row.update(
                        mean=summary.mean,
                        p50=summary.median,
                        p90=summary.p90,
                        p99=summary.p99,
                        min=summary.minimum,
                        max=summary.maximum,
                    )
                rows.append(row)
            else:
                rows.append(
                    {
                        "type": "metric",
                        "kind": metric.kind,
                        "name": metric.name,
                        "labels": dict(metric.labels),
                        "value": metric.value,
                    }
                )
        return rows

    # --- pickling -----------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without sinks (they hold open file handles).

        A registry restored from a checkpoint keeps every instrument and
        the tracer ring, but starts with no sinks attached -- callers
        re-attach output files after :func:`repro.ckpt.restore`.
        """
        state = self.__dict__.copy()
        state["metric_sinks"] = []
        state["trace_sinks"] = []
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    # --- worker-state transport ---------------------------------------------

    def export_state(self) -> List[Tuple]:
        """Picklable raw state of every instrument, in sorted order.

        Unlike :meth:`snapshot` (which summarises histograms), this
        preserves raw observations, so a parent process can
        :meth:`absorb` a worker registry without losing percentile
        fidelity.  The sharded engine ships this across the epoch
        barrier channel.
        """
        state: List[Tuple] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                state.append((
                    "histogram", metric.name, dict(metric.labels),
                    list(metric.values), metric.wallclock,
                ))
            else:
                state.append(
                    (metric.kind, metric.name, dict(metric.labels),
                     metric.value)
                )
        return state

    def absorb(self, state: List[Tuple]) -> None:
        """Merge an :meth:`export_state` payload into this registry.

        Deterministic merge rules: counters add, gauges keep the
        high-water mark (order-independent), histograms extend in call
        order.  Absorbing worker states in a fixed (shard index) order
        therefore yields identical registries on every run.
        """
        for entry in state:
            kind = entry[0]
            if kind == "counter":
                __, name, labels, value = entry
                self.counter(name, **labels).inc(value)
            elif kind == "gauge":
                __, name, labels, value = entry
                self.gauge(name, **labels).max(value)
            elif kind == "histogram":
                __, name, labels, values, wallclock = entry
                self.histogram(name, wallclock=wallclock, **labels) \
                    .values.extend(values)
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")

    # --- export -------------------------------------------------------------

    def flush(self, include_wallclock: bool = True) -> None:
        """Push the current snapshot / trace to every attached sink."""
        if self.metric_sinks:
            rows = self.snapshot(include_wallclock=include_wallclock)
            for sink in self.metric_sinks:
                for row in rows:
                    sink.write(row)
        if self.trace_sinks and self.tracer is not None:
            for event in self.tracer.events():
                row = {"type": "trace"}
                row.update(event.as_dict())
                for sink in self.trace_sinks:
                    sink.write(row)

    def close(self, include_wallclock: bool = True) -> None:
        """Flush then close every sink."""
        self.flush(include_wallclock=include_wallclock)
        for sink in self.metric_sinks + self.trace_sinks:
            sink.close()

    def clear(self) -> None:
        """Drop all instruments (and trace events, if any)."""
        self._metrics.clear()
        if self.tracer is not None:
            self.tracer.clear()


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: Dict[str, Any] = {}
    value = 0
    values: List[float] = []
    wallclock = False
    count = 0
    total = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> None:
        return None

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(Registry):
    """Disabled registry: every instrument is one shared no-op object.

    This is the process default, so un-configured code pays only for an
    ``enabled`` check (or a no-op method call) per instrumentation site.
    """

    def __init__(self):
        super().__init__(enabled=False)

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, wallclock: bool = False, **labels: Any
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def timer(self, name: str, **labels: Any) -> _Timer:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def trace(self, kind: str, t: float, **fields: Any) -> None:
        pass

    def __reduce__(self):
        # Stateless by construction: every pickled NullRegistry -- e.g.
        # inside a repro.ckpt snapshot of a telemetry-free simulator --
        # restores as the shared process singleton.
        return (_null_registry, ())


def _null_registry() -> "NullRegistry":
    return NULL_REGISTRY


#: The process-wide default: telemetry off until someone attaches it.
NULL_REGISTRY = NullRegistry()
_default_registry: Registry = NULL_REGISTRY


def get_registry() -> Registry:
    """The process-wide default registry (a no-op unless configured)."""
    return _default_registry


def set_registry(registry: Optional[Registry]) -> Registry:
    """Install ``registry`` as the process default; returns the previous.

    Passing ``None`` restores the disabled :data:`NULL_REGISTRY`.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return previous


@contextlib.contextmanager
def use_registry(registry: Registry) -> Iterator[Registry]:
    """Temporarily install a default registry (tests, scoped profiling)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
