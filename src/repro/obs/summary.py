"""Summarise exported telemetry files (``python -m repro obs summarize``).

Reads the JSONL rows a :class:`~repro.obs.sinks.JsonlSink` wrote --
metrics and trace events may share one file or live in separate ones --
and renders the operator-facing digest: counter/gauge tables, histogram
percentiles, and trace-event counts by kind.
"""

from __future__ import annotations

from collections import Counter as _CounterDict
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.sinks import read_jsonl


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _labels_str(labels: Dict[str, Any]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def summarize_rows(rows: Sequence[Dict[str, Any]]) -> str:
    """Human-readable digest of exported metric/trace rows."""
    counters: List[Dict[str, Any]] = []
    gauges: List[Dict[str, Any]] = []
    histograms: List[Dict[str, Any]] = []
    trace_kinds: _CounterDict = _CounterDict()
    for row in rows:
        if row.get("type") == "trace":
            trace_kinds[row.get("kind", "?")] += 1
        elif row.get("kind") == "counter":
            counters.append(row)
        elif row.get("kind") == "gauge":
            gauges.append(row)
        elif row.get("kind") == "histogram":
            histograms.append(row)

    lines: List[str] = []
    for title, group in (("counters", counters), ("gauges", gauges)):
        if not group:
            continue
        lines.append(f"== {title} ==")
        width = max(len(r["name"]) for r in group)
        for row in sorted(
            group, key=lambda r: (r["name"], _labels_str(r["labels"]))
        ):
            lines.append(
                f"{row['name']:<{width}}  "
                f"{_labels_str(row['labels']):<20}  {_fmt(row['value'])}"
            )
        lines.append("")
    if histograms:
        lines.append("== histograms ==")
        width = max(len(r["name"]) for r in histograms)
        for row in sorted(
            histograms, key=lambda r: (r["name"], _labels_str(r["labels"]))
        ):
            if row.get("count"):
                detail = (
                    f"count={row['count']} mean={_fmt(row.get('mean'))} "
                    f"p50={_fmt(row.get('p50'))} p90={_fmt(row.get('p90'))} "
                    f"p99={_fmt(row.get('p99'))} max={_fmt(row.get('max'))}"
                )
            else:
                detail = "count=0"
            lines.append(
                f"{row['name']:<{width}}  "
                f"{_labels_str(row['labels']):<20}  {detail}"
            )
        lines.append("")
    if trace_kinds:
        lines.append("== trace events ==")
        width = max(len(k) for k in trace_kinds)
        for kind, count in sorted(trace_kinds.items()):
            lines.append(f"{kind:<{width}}  {count}")
        lines.append("")
    if not lines:
        return "no telemetry rows found"
    return "\n".join(lines).rstrip()


def summarize_files(paths: Iterable[str]) -> str:
    """Digest of one or more JSONL telemetry files, concatenated."""
    rows: List[Dict[str, Any]] = []
    for path in paths:
        rows.extend(read_jsonl(path))
    return summarize_rows(rows)
