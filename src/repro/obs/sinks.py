"""Pluggable output sinks for metric snapshots and trace events.

Every sink consumes flat ``dict`` rows (as produced by
:meth:`repro.obs.registry.Registry.snapshot` and
:meth:`~repro.obs.trace.TraceEvent.as_dict`) through a tiny interface:
``write(row)`` then ``close()``.

* :class:`JsonlSink` -- one sorted-key JSON object per line; the
  machine-readable interchange format (``pnet obs summarize`` reads it).
* :class:`CsvSink` -- fixed-column CSV for spreadsheet plotting.
* :class:`MemorySink` -- keeps rows in a list (tests, notebooks).
* :class:`NullSink` -- discards everything; attaching it to a disabled
  registry costs nothing, which is what keeps "telemetry off" free.

JSON rows are rendered with ``sort_keys=True`` and Python ``repr``
floats, so identical data serialises to identical bytes -- the property
the cross-worker determinism tests pin down.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Fixed CSV column order (metric rows fill the left half, trace rows
#: the right; missing cells stay empty).
CSV_COLUMNS = (
    "type", "name", "kind", "labels", "value",
    "count", "mean", "p50", "p90", "p99", "min", "max",
    "t", "fields",
)


class Sink:
    """Interface: ``write`` rows, then ``close`` once."""

    def write(self, row: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class NullSink(Sink):
    """Discards every row."""

    def write(self, row: Dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Accumulates rows in :attr:`rows` (for tests and notebooks)."""

    def __init__(self):
        self.rows: List[Dict[str, Any]] = []
        self.closed = False

    def write(self, row: Dict[str, Any]) -> None:
        self.rows.append(row)

    def close(self) -> None:
        self.closed = True


class JsonlSink(Sink):
    """One JSON object per line, keys sorted for byte-stable output."""

    def __init__(self, target: Union[PathLike, io.TextIOBase]):
        if isinstance(target, (str, pathlib.Path)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._owns = True
            self.path: Optional[pathlib.Path] = path
        else:
            self._fh = target
            self._owns = False
            self.path = None

    def write(self, row: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(row, sort_keys=True))
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CsvSink(Sink):
    """Fixed-column CSV (see :data:`CSV_COLUMNS`).

    Nested cells (``labels``, ``fields``) are rendered as sorted-key
    JSON strings so the file stays strictly tabular.
    """

    def __init__(self, target: Union[PathLike, io.TextIOBase]):
        if isinstance(target, (str, pathlib.Path)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(path, "w", newline="", encoding="utf-8")
            self._owns = True
            self.path: Optional[pathlib.Path] = path
        else:
            self._fh = target
            self._owns = False
            self.path = None
        self._writer = csv.writer(self._fh)
        self._writer.writerow(CSV_COLUMNS)

    def write(self, row: Dict[str, Any]) -> None:
        known = {k: row.get(k, "") for k in CSV_COLUMNS}
        if row.get("type", "trace") == "trace":
            # Trace rows arrive flat (kind/t + free-form fields): tuck
            # the free-form part into the "fields" cell.
            known["type"] = "trace"
            known["name"] = row.get("kind", "")
            extra = {k: v for k, v in row.items() if k not in CSV_COLUMNS}
            if extra:
                known["fields"] = json.dumps(extra, sort_keys=True)
        if isinstance(known.get("labels"), dict):
            known["labels"] = json.dumps(known["labels"], sort_keys=True)
        self._writer.writerow([known[k] for k in CSV_COLUMNS])

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a JSONL metrics/trace file back into rows."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
