"""``repro.obs``: the fabric-wide telemetry layer.

One stable instrumentation API for every stat the stack produces --
per-plane queue counters from the packet simulator, iteration counts
from the fluid model, LP solve timings, runner wall clocks, and bounded
per-flow/per-queue traces -- replacing the ad-hoc counters each layer
used to expose.

Quick use::

    from repro import obs

    registry = obs.Registry(tracer=obs.Tracer())
    net = PacketNetwork(planes, obs=registry)   # explicit injection
    ...
    registry.metric_sinks.append(obs.JsonlSink("metrics.jsonl"))
    registry.close()

or process-wide (what ``python -m repro <fig> --metrics-out ...`` does)::

    obs.set_registry(obs.Registry(tracer=obs.Tracer()))

Telemetry is **off by default**: the process default is a
:class:`NullRegistry` whose instruments are shared no-ops, so
un-instrumented runs pay (near) nothing.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.sinks import (
    CsvSink,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    read_jsonl,
)
from repro.obs.summary import summarize_files, summarize_rows
from repro.obs.trace import DEFAULT_CAPACITY, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "NullRegistry",
    "Registry",
    "get_registry",
    "set_registry",
    "use_registry",
    "CsvSink",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "Sink",
    "read_jsonl",
    "summarize_files",
    "summarize_rows",
    "DEFAULT_CAPACITY",
    "TraceEvent",
    "Tracer",
]
