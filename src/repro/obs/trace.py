"""Bounded per-flow/per-queue event tracer.

A :class:`Tracer` is a fixed-capacity ring of :class:`TraceEvent`
records stamped with *simulated* time, so traces are deterministic for a
given seed and byte-identical across worker counts.  When the ring is
full the oldest events are discarded (the ``emitted`` counter keeps the
true total) -- a long simulation can therefore run with tracing on
without unbounded memory growth.

High-frequency series (per-packet queue depth) are only emitted when
``verbose`` is set; rare events (drops, ECN marks, RTOs, completions)
are always traced.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

#: Default ring capacity (events).
DEFAULT_CAPACITY = 65536


class TraceEvent:
    """One traced occurrence: a kind, a simulated timestamp, and fields."""

    __slots__ = ("kind", "t", "fields")

    def __init__(self, kind: str, t: float, fields: Dict[str, Any]):
        self.kind = kind
        self.t = t
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-able form (``kind``/``t`` first, then the fields)."""
        row: Dict[str, Any] = {"kind": self.kind, "t": self.t}
        row.update(self.fields)
        return row

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"TraceEvent({self.kind!r}, t={self.t!r}, {inner})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceEvent)
            and self.kind == other.kind
            and self.t == other.t
            and self.fields == other.fields
        )


class Tracer:
    """Fixed-capacity event ring shared by every instrumented component.

    Args:
        capacity: maximum retained events (oldest evicted first).
        verbose: also emit high-frequency series (e.g. per-packet queue
            depth) that instrumented components gate on this flag.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, verbose: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.verbose = verbose
        self.emitted = 0
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, kind: str, t: float, **fields: Any) -> None:
        """Record one event (evicting the oldest if at capacity)."""
        self.emitted += 1
        self._ring.append(TraceEvent(kind, t, fields))

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted because the ring was full."""
        return self.emitted - len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self._ring)
