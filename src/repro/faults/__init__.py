"""Deterministic, seedable fault injection for both simulators.

The layer has three parts (see ROADMAP):

* :mod:`repro.faults.schedule` -- :class:`FaultSchedule`, a validated,
  time-ordered list of :class:`FaultEvent` with a canonical JSON form.
* :mod:`repro.faults.generators` -- chaos scenario generators driven by
  an explicit ``random.Random`` seed for byte-for-byte replay.
* :mod:`repro.faults.injector` -- :class:`FaultInjector`, which executes
  a schedule against a :class:`~repro.sim.network.PacketNetwork` or
  :class:`~repro.fluid.flowsim.FluidSimulator`, repairs routing state
  incrementally, resteers MPTCP subflows off dead paths, and exports
  degradation metrics through :mod:`repro.obs`.
"""

from repro.faults.generators import (
    correlated_switch_failure,
    host_uplink_flaps,
    plane_outage,
    uniform_link_flaps,
)
from repro.faults.injector import (
    DEFAULT_DETECTION_DELAY,
    FaultInjector,
    InjectionStats,
    surviving_capacity,
)
from repro.faults.schedule import (
    HOST_UPLINK_DOWN,
    HOST_UPLINK_UP,
    KINDS,
    LINK_DOWN,
    LINK_UP,
    PLANE_DOWN,
    PLANE_UP,
    SWITCH_DOWN,
    SWITCH_UP,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "DEFAULT_DETECTION_DELAY",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "InjectionStats",
    "KINDS",
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_DOWN",
    "SWITCH_UP",
    "PLANE_DOWN",
    "PLANE_UP",
    "HOST_UPLINK_DOWN",
    "HOST_UPLINK_UP",
    "correlated_switch_failure",
    "host_uplink_flaps",
    "plane_outage",
    "surviving_capacity",
    "uniform_link_flaps",
]
