"""Timed, validated fault schedules with a deterministic JSON form.

A :class:`FaultSchedule` is the unit of replay for every availability
study: an ordered list of :class:`FaultEvent` -- link down/up, switch
down/up (fails all incident links), whole-plane down/up, host-uplink
flaps -- that either simulator executes at exact simulated times via
:class:`repro.faults.FaultInjector`.  Schedules round-trip through JSON
byte-for-byte (``dumps`` is canonical: sorted keys, fixed indentation),
so a chaos run is fully described by one small file and a re-run of the
same file reproduces identical results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.topology.graph import HOST

#: Event kinds, as ``(element, transition)`` pairs.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DOWN = "switch_down"
SWITCH_UP = "switch_up"
PLANE_DOWN = "plane_down"
PLANE_UP = "plane_up"
HOST_UPLINK_DOWN = "host_uplink_down"
HOST_UPLINK_UP = "host_uplink_up"

KINDS = frozenset({
    LINK_DOWN, LINK_UP, SWITCH_DOWN, SWITCH_UP,
    PLANE_DOWN, PLANE_UP, HOST_UPLINK_DOWN, HOST_UPLINK_UP,
})

#: Fields each kind requires beyond ``at``/``kind``/``plane``.
_EXTRA_FIELDS = {
    LINK_DOWN: ("u", "v"),
    LINK_UP: ("u", "v"),
    SWITCH_DOWN: ("node",),
    SWITCH_UP: ("node",),
    PLANE_DOWN: (),
    PLANE_UP: (),
    HOST_UPLINK_DOWN: ("host",),
    HOST_UPLINK_UP: ("host",),
}

#: Schedule-file format version (bump on incompatible change).
FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault transition.

    Attributes:
        at: simulated time in seconds (>= 0).
        kind: one of :data:`KINDS`.
        plane: dataplane index the event applies to.
        u, v: link endpoints (link events only).
        node: switch name (switch events only).
        host: host name (host-uplink events only).
    """

    at: float
    kind: str
    plane: int
    u: Optional[str] = None
    v: Optional[str] = None
    node: Optional[str] = None
    host: Optional[str] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick one of "
                f"{sorted(KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.plane < 0:
            raise ValueError(f"plane index must be >= 0, got {self.plane}")
        required = _EXTRA_FIELDS[self.kind]
        for name in required:
            if getattr(self, name) is None:
                raise ValueError(f"{self.kind} event requires {name!r}")
        for name in ("u", "v", "node", "host"):
            if name not in required and getattr(self, name) is not None:
                raise ValueError(
                    f"{self.kind} event does not take {name!r}"
                )

    @property
    def is_down(self) -> bool:
        return self.kind.endswith("_down")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict with only the fields the kind uses."""
        out: Dict[str, Any] = {
            "at": self.at, "kind": self.kind, "plane": self.plane,
        }
        for name in _EXTRA_FIELDS[self.kind]:
            out[name] = getattr(self, name)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        known = {"at", "kind", "plane", "u", "v", "node", "host"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown event fields {sorted(unknown)}")
        if "kind" not in data or "at" not in data or "plane" not in data:
            raise ValueError("event requires 'at', 'kind' and 'plane'")
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            plane=int(data["plane"]),
            u=data.get("u"),
            v=data.get("v"),
            node=data.get("node"),
            host=data.get("host"),
        )


class FaultSchedule:
    """An immutable, time-ordered list of :class:`FaultEvent`.

    Events are stably sorted by time at construction (ties keep input
    order, so "fail then restore at the same instant" replays exactly as
    written).  ``validate(pnet)`` checks every referenced element exists
    before a run starts -- a schedule typo fails fast, not mid-chaos.
    """

    def __init__(self, events: Iterable[FaultEvent]):
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FaultSchedule) and self.events == other.events
        )

    def __repr__(self) -> str:
        end = self.events[-1].at if self.events else 0.0
        return f"FaultSchedule(events={len(self.events)}, end={end})"

    @property
    def duration(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].at if self.events else 0.0

    def validate(self, pnet) -> None:
        """Check every event references an element of ``pnet``.

        Raises ValueError on the first unknown plane, link, switch, or
        host.  Accepts any object with ``planes`` (a :class:`PNet` or a
        simulator).
        """
        planes = pnet.planes
        for event in self.events:
            if event.plane >= len(planes):
                raise ValueError(
                    f"event at t={event.at} names plane {event.plane} but "
                    f"the network has {len(planes)}"
                )
            plane = planes[event.plane]
            if event.u is not None:
                if not plane.has_link(event.u, event.v):
                    raise ValueError(
                        f"no link {event.u}--{event.v} in plane "
                        f"{event.plane}"
                    )
            if event.node is not None:
                if event.node not in plane or plane.kind(event.node) == HOST:
                    raise ValueError(
                        f"{event.node!r} is not a switch of plane "
                        f"{event.plane}"
                    )
            if event.host is not None:
                if event.host not in plane or plane.kind(event.host) != HOST:
                    raise ValueError(
                        f"{event.host!r} is not a host of plane "
                        f"{event.plane}"
                    )

    # --- canonical JSON form ------------------------------------------------

    def dumps(self) -> str:
        """Canonical JSON: byte-identical for equal schedules."""
        doc = {
            "version": FORMAT_VERSION,
            "events": [e.as_dict() for e in self.events],
        }
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultSchedule":
        doc = json.loads(text)
        if not isinstance(doc, dict) or "events" not in doc:
            raise ValueError("schedule JSON must be {version, events: [...]}")
        version = doc.get("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported schedule version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return cls(FaultEvent.from_dict(e) for e in doc["events"])

    def to_file(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())

    @classmethod
    def from_file(cls, path) -> "FaultSchedule":
        with open(path) as fh:
            return cls.loads(fh.read())

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule interleaving both event lists by time."""
        return FaultSchedule(list(self.events) + list(other.events))

    def restricted(self, planes: Iterable[int]) -> "FaultSchedule":
        """The sub-schedule touching only the given planes.

        Every fault event names exactly one plane, so a schedule
        partitions cleanly by plane ownership: the sharded engine
        routes each event to the worker that owns its plane, and the
        union of all shards' restrictions replays the full schedule.
        """
        keep = frozenset(planes)
        return FaultSchedule(e for e in self.events if e.plane in keep)
