"""Deterministic fault injection for both simulators.

:class:`FaultInjector` executes a :class:`~repro.faults.schedule.
FaultSchedule` against a :class:`~repro.sim.network.PacketNetwork` (via
its event loop) or a :class:`~repro.fluid.flowsim.FluidSimulator` (via
its timestep hooks), keeping three layers consistent on every event:

1. **Topology** -- element events expand to link sets (a switch fails
   all its incident links; a plane fails every link it has) applied
   through per-link reference counts, so overlapping events compose:
   a link downed by both a switch event and a plane event only comes
   back when both restore.
2. **Routing** -- failures repair the :class:`~repro.core.pnet.PNet`
   caches incrementally (only paths over dead elements are touched;
   survivors keep their exact rank) and registered
   :class:`~repro.routing.tables.ForwardingTable` s reinstall only
   affected destinations; restores invalidate the plane (paths may
   shorten).  Policies with private memos are invalidated through
   their ``invalidate()`` hook.
3. **Flows** -- after a detection delay, flows with subflows on dead
   paths are resteered (packet sim: abort + relaunch the un-ACKed
   remainder; fluid sim: migrate) using the configured selector --
   typically a :class:`~repro.core.failures.FailureAwareSelector` --
   or stranded (aborted and counted) when fully partitioned.  On
   restore, flows are optionally rebalanced back onto recovered paths.

Everything is driven by simulated time and deterministic iteration
order, so a (seed, schedule) pair replays byte-for-byte.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.control import actions as resteer_actions
from repro.control.actions import same_paths as _same_paths
from repro.core.failures import path_is_live
from repro.core.pnet import PlanePath, PNet
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.fluid.flowsim import FluidSimulator
from repro.obs import get_registry
from repro.routing.tables import ForwardingTable
from repro.sim.network import PacketNetwork
from repro.topology.graph import link_key

#: Default failure-detection delay (link-status propagation to hosts).
DEFAULT_DETECTION_DELAY = 1e-3


def surviving_capacity(planes) -> float:
    """Fraction of total link capacity currently live, across planes.

    Exactly 1.0 when nothing is failed (the restore-all invariant the
    property tests pin).
    """
    total = sum(l.capacity for p in planes for l in p.links)
    live = sum(l.capacity for p in planes for l in p.live_links)
    return live / total if total else 1.0


@dataclass
class InjectionStats:
    """Plain-counter mirror of the injector's obs metrics."""

    events_applied: int = 0
    links_failed: int = 0
    links_restored: int = 0
    flows_resteered: int = 0
    flows_stranded: int = 0
    routes_kept: int = 0
    routes_repaired: int = 0
    routes_reenumerated: int = 0


class FaultInjector:
    """Execute a fault schedule against a network + simulator pair.

    Args:
        pnet: the routing view; must wrap the *same* Topology objects
            the simulator runs over (``PacketNetwork(pnet.planes)`` /
            ``FluidSimulator(pnet.planes)``).
        schedule: validated against ``pnet`` at construction.
        selector: path re-selection for resteered flows -- anything with
            ``select(src, dst, flow_id) -> List[PlanePath]`` (use a
            :class:`~repro.core.failures.FailureAwareSelector`).  With
            no selector, resteering keeps a flow's surviving paths and
            falls back to any live plane's shortest path.
        obs: telemetry registry (defaults to the process-wide one).
        detection_delay: simulated seconds between an event and the
            hosts reacting to it; also the floor of every reroute-
            latency observation.
        rebalance_on_restore: after an ``*_up`` event, re-run the
            selector for every active flow and move flows whose
            selection changed (models MPTCP re-probing recovered
            planes).  Requires a selector.
        on_event: ``fn(event, changed_links)`` called after each event
            is applied (tests hook invariants here).
    """

    def __init__(
        self,
        pnet: PNet,
        schedule: FaultSchedule,
        selector=None,
        obs=None,
        detection_delay: float = DEFAULT_DETECTION_DELAY,
        rebalance_on_restore: bool = True,
        on_event: Optional[Callable[[FaultEvent, List[Tuple[str, str]]], None]] = None,
    ):
        if detection_delay < 0:
            raise ValueError(
                f"detection_delay must be >= 0, got {detection_delay}"
            )
        schedule.validate(pnet)
        self.pnet = pnet
        self.schedule = schedule
        self.selector = selector
        self.obs = obs if obs is not None else get_registry()
        self.detection_delay = detection_delay
        self.rebalance_on_restore = rebalance_on_restore
        self.on_event = on_event
        self.stats = InjectionStats()
        self._network = None
        self._tables: List[Tuple[int, ForwardingTable]] = []
        #: Per (plane, link-key) count of down-events currently holding
        #: the link failed.
        self._down_count = {}

    # --- wiring -------------------------------------------------------------

    def register_table(self, plane_idx: int, table: ForwardingTable) -> None:
        """Keep a per-plane forwarding table repaired across events."""
        self._tables.append((plane_idx, table))

    def attach(self, network) -> None:
        """Schedule every event on the simulator's clock.

        Call once, before ``run()``; accepts a :class:`PacketNetwork`
        or a :class:`FluidSimulator` built over ``pnet.planes``.
        """
        if self._network is not None:
            raise RuntimeError("injector is already attached")
        if isinstance(network, PacketNetwork):
            schedule_at = network.loop.schedule_at
        elif isinstance(network, FluidSimulator):
            schedule_at = network.schedule
        else:
            raise TypeError(
                f"cannot attach to {type(network).__name__}; expected "
                "PacketNetwork or FluidSimulator"
            )
        for plane, sim_plane in zip(self.pnet.planes, network.planes):
            if plane is not sim_plane:
                raise ValueError(
                    "simulator planes are not the PNet's Topology objects; "
                    "build the simulator over pnet.planes"
                )
        self._network = network
        self._publish_gauges()
        # Partials, not lambdas: pending fault events must pickle so a
        # checkpoint taken mid-schedule resumes the remaining events.
        for event in self.schedule:
            schedule_at(event.at, functools.partial(self._apply, event))

    def apply_all(self) -> InjectionStats:
        """Apply the whole schedule directly to the topologies.

        The simulator-free mode: no flows exist, so only the topology
        and routing layers move.  Useful for routing-repair studies and
        schedule debugging.
        """
        if self._network is not None:
            raise RuntimeError("already attached to a simulator")
        for event in self.schedule:
            self._apply(event)
        return self.stats

    # --- event application --------------------------------------------------

    def _event_links(self, event: FaultEvent) -> List[Tuple[str, str]]:
        """The undirected link keys an event targets, in stable order."""
        plane = self.pnet.planes[event.plane]
        if event.u is not None:
            return [link_key(event.u, event.v)]
        if event.node is not None:
            return [
                l.key for l in plane.incident_links(event.node, live_only=False)
            ]
        if event.host is not None:
            return [
                l.key for l in plane.incident_links(event.host, live_only=False)
            ]
        return [l.key for l in plane.links]

    def _fail(self, plane_idx: int, u: str, v: str) -> None:
        if self._network is None:
            self.pnet.planes[plane_idx].fail_link(u, v)
        else:
            self._network.fail_link(plane_idx, u, v)

    def _restore(self, plane_idx: int, u: str, v: str) -> None:
        if self._network is None:
            self.pnet.planes[plane_idx].restore_link(u, v)
        else:
            self._network.restore_link(plane_idx, u, v)

    def _invalidate_policies(self) -> None:
        invalidate = getattr(self.selector, "invalidate", None)
        if invalidate is not None:
            invalidate()

    def _apply(self, event: FaultEvent) -> None:
        obs = self.obs
        plane_idx = event.plane
        changed: List[Tuple[str, str]] = []
        if event.is_down:
            for key in self._event_links(event):
                count = self._down_count.get((plane_idx, key), 0)
                self._down_count[(plane_idx, key)] = count + 1
                if count == 0:
                    self._fail(plane_idx, *key)
                    changed.append(key)
            self.stats.links_failed += len(changed)
            repair = self.pnet.repair_after_failure(plane_idx, changed)
            self.stats.routes_kept += repair.kept
            self.stats.routes_repaired += repair.repaired
            self.stats.routes_reenumerated += repair.reenumerated
            for table_plane, table in self._tables:
                if table_plane == plane_idx:
                    table.repair(changed)
            if obs.enabled:
                obs.counter("faults.routes.repaired").inc(repair.repaired)
                obs.counter("faults.routes.reenumerated").inc(
                    repair.reenumerated
                )
        else:
            for key in self._event_links(event):
                count = self._down_count.get((plane_idx, key), 0)
                if count == 0:
                    continue  # not held down by this injector
                self._down_count[(plane_idx, key)] = count - 1
                if count == 1:
                    self._restore(plane_idx, *key)
                    changed.append(key)
            self.stats.links_restored += len(changed)
            if changed:
                # Restores can shorten paths: survivors of a filter would
                # be mis-ranked, so the plane's caches start over.
                self.pnet.invalidate_plane(plane_idx)
                for table_plane, table in self._tables:
                    if table_plane == plane_idx:
                        table.reinstall_all()
        self._invalidate_policies()
        self.stats.events_applied += 1

        if obs.enabled:
            obs.counter("faults.events", kind=event.kind).inc()
            self._publish_gauges()
            obs.trace(
                "fault.event", self._now(), event=event.kind,
                plane=plane_idx, changed_links=len(changed),
            )
        if self._network is not None and changed:
            self._schedule_reaction(event)
        if self.on_event is not None:
            self.on_event(event, changed)

    def _now(self) -> float:
        net = self._network
        if net is None:
            return 0.0
        return net.loop.now if isinstance(net, PacketNetwork) else net.now

    def _publish_gauges(self) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        obs.gauge("faults.surviving_capacity").set(
            surviving_capacity(self.pnet.planes)
        )
        for idx, plane in enumerate(self.pnet.planes):
            obs.gauge("faults.plane.live_links", plane=idx).set(
                len(plane.live_links)
            )

    # --- host reaction: resteer / rebalance ----------------------------------

    def _schedule_reaction(self, event: FaultEvent) -> None:
        net = self._network
        rebalance = not event.is_down
        if rebalance and not (
            self.rebalance_on_restore and self.selector is not None
        ):
            return
        t_event = self._now()
        when = t_event + self.detection_delay
        react = functools.partial(self._react, t_event, rebalance)
        if isinstance(net, PacketNetwork):
            net.loop.schedule_at(when, react)
        else:
            net.schedule(when, react)

    def _pick_paths(
        self, src: str, dst: str, flow_id: int, live: Sequence[PlanePath]
    ) -> List[PlanePath]:
        if self.selector is not None:
            return [
                pp
                for pp in self.selector.select(src, dst, flow_id)
                if path_is_live(self.pnet, pp)
            ]
        if live:
            return list(live)
        for plane_idx in self.pnet.live_planes(src, dst):
            options = self.pnet.shortest_paths(plane_idx, src, dst)
            if options:
                return [(plane_idx, options[0])]
        return []

    def _react(self, t_event: float, rebalance: bool) -> None:
        net = self._network
        if isinstance(net, PacketNetwork):
            self._react_packet(net, t_event, rebalance)
        else:
            self._react_fluid(net, t_event, rebalance)

    def _observe_reroute(self, latency: float) -> None:
        self.stats.flows_resteered += 1
        if self.obs.enabled:
            self.obs.counter("faults.flows_resteered").inc()
            self.obs.histogram("faults.reroute_seconds").observe(latency)

    def _strand(self) -> None:
        self.stats.flows_stranded += 1
        if self.obs.enabled:
            self.obs.counter("faults.flows_stranded").inc()

    def _react_packet(
        self, net: PacketNetwork, t_event: float, rebalance: bool
    ) -> None:
        now = net.loop.now
        for flow_id, source, spec in net.active_flows():
            if getattr(source, "completed", False):
                continue
            live = [pp for pp in spec.paths if path_is_live(self.pnet, pp)]
            if len(live) == len(spec.paths):
                if not rebalance:
                    continue
                new_paths = self._pick_paths(spec.src, spec.dst, flow_id, live)
                if not new_paths or _same_paths(new_paths, spec.paths):
                    continue
            else:
                new_paths = self._pick_paths(spec.src, spec.dst, flow_id, live)
            relaunched = resteer_actions.abort_and_relaunch(
                net, flow_id, source, spec, new_paths, now
            )
            if relaunched is None:
                self._strand()
                continue
            self._observe_reroute(now - t_event)

    def _react_fluid(
        self, sim: FluidSimulator, t_event: float, rebalance: bool
    ) -> None:
        now = sim.now
        for flow_id, src, dst, paths in sim.active_flow_paths():
            live = [pp for pp in paths if path_is_live(self.pnet, pp)]
            if len(live) == len(paths):
                if not rebalance:
                    continue
                new_paths = self._pick_paths(src, dst, flow_id, live)
                if not new_paths or _same_paths(new_paths, paths):
                    continue
            else:
                new_paths = self._pick_paths(src, dst, flow_id, live)
            if not new_paths:
                sim.abort_flow(flow_id)
                self._strand()
                continue
            if resteer_actions.migrate(sim, flow_id, new_paths):
                self._observe_reroute(now - t_event)
