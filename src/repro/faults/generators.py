"""Random-but-replayable chaos scenario generators.

Every generator takes an explicit ``random.Random`` (never the module
RNG), consumes it in a fixed order, and returns a
:class:`~repro.faults.schedule.FaultSchedule` whose canonical JSON is
byte-identical for the same seed -- the property the chaos-determinism
tests pin.  All generators emit *paired* events: every ``*_down`` has a
matching ``*_up``, so running a generated schedule to completion always
returns the network to full health (surviving capacity exactly 1.0).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.faults.schedule import (
    HOST_UPLINK_DOWN,
    HOST_UPLINK_UP,
    LINK_DOWN,
    LINK_UP,
    PLANE_DOWN,
    PLANE_UP,
    SWITCH_DOWN,
    SWITCH_UP,
    FaultEvent,
    FaultSchedule,
)
from repro.topology.graph import HOST


def _switch_links(plane) -> List:
    """Switch--switch links of one plane, in deterministic link order."""
    return [
        link
        for link in plane.links
        if plane.kind(link.u) != HOST and plane.kind(link.v) != HOST
    ]


def uniform_link_flaps(
    pnet,
    rng: random.Random,
    n_flaps: int,
    duration: float,
    mean_outage: float,
    switch_only: bool = True,
) -> FaultSchedule:
    """``n_flaps`` independent link flaps, uniform in space and time.

    Each flap picks a (plane, link) uniformly at random, goes down at a
    time uniform in ``[0, duration)``, and comes back after an
    exponential outage with the given mean (the classic repairable-
    component model).  ``switch_only`` keeps host uplinks out of the
    draw (the paper's Fig 14 setting).
    """
    if n_flaps < 0:
        raise ValueError(f"n_flaps must be >= 0, got {n_flaps}")
    if duration <= 0 or mean_outage <= 0:
        raise ValueError("duration and mean_outage must be > 0")
    eligible = [
        (plane_idx, link)
        for plane_idx, plane in enumerate(pnet.planes)
        for link in (
            _switch_links(plane) if switch_only else plane.links
        )
    ]
    if not eligible:
        raise ValueError("no eligible links to flap")
    events: List[FaultEvent] = []
    for __ in range(n_flaps):
        plane_idx, link = eligible[rng.randrange(len(eligible))]
        start = rng.uniform(0.0, duration)
        outage = rng.expovariate(1.0 / mean_outage)
        events.append(FaultEvent(
            at=start, kind=LINK_DOWN, plane=plane_idx, u=link.u, v=link.v,
        ))
        events.append(FaultEvent(
            at=start + outage, kind=LINK_UP, plane=plane_idx,
            u=link.u, v=link.v,
        ))
    return FaultSchedule(events)


def plane_outage(
    pnet,
    rng: random.Random,
    at: float,
    outage: float,
    plane: Optional[int] = None,
) -> FaultSchedule:
    """One whole dataplane down at ``at``, restored ``outage`` later.

    The paper's graceful-degradation scenario: N-1 planes keep carrying
    traffic.  ``plane`` pins the victim; otherwise the RNG picks one.
    """
    if outage <= 0:
        raise ValueError(f"outage must be > 0, got {outage}")
    if plane is None:
        plane = rng.randrange(pnet.n_planes)
    return FaultSchedule([
        FaultEvent(at=at, kind=PLANE_DOWN, plane=plane),
        FaultEvent(at=at + outage, kind=PLANE_UP, plane=plane),
    ])


def correlated_switch_failure(
    pnet,
    rng: random.Random,
    n_switches: int,
    at: float,
    outage: float,
    plane: Optional[int] = None,
) -> FaultSchedule:
    """``n_switches`` switches of one plane fail together (shared cause).

    Models a rack PDU / firmware-push blast radius: the victims drop at
    the same instant in the same plane and recover together.
    """
    if n_switches < 1:
        raise ValueError(f"n_switches must be >= 1, got {n_switches}")
    if outage <= 0:
        raise ValueError(f"outage must be > 0, got {outage}")
    if plane is None:
        plane = rng.randrange(pnet.n_planes)
    switches = pnet.planes[plane].switches
    if n_switches > len(switches):
        raise ValueError(
            f"plane {plane} has {len(switches)} switches, asked for "
            f"{n_switches}"
        )
    victims = rng.sample(switches, n_switches)
    events = [
        FaultEvent(at=at, kind=SWITCH_DOWN, plane=plane, node=node)
        for node in victims
    ]
    events += [
        FaultEvent(at=at + outage, kind=SWITCH_UP, plane=plane, node=node)
        for node in victims
    ]
    return FaultSchedule(events)


def host_uplink_flaps(
    pnet,
    rng: random.Random,
    n_flaps: int,
    duration: float,
    mean_outage: float,
) -> FaultSchedule:
    """Host-uplink flaps: a host's NIC channel to one plane drops.

    Exercises the NIC-visible failure-detection path (paper section
    3.4): the host stops using the plane and fails over to the others.
    """
    if n_flaps < 0:
        raise ValueError(f"n_flaps must be >= 0, got {n_flaps}")
    if duration <= 0 or mean_outage <= 0:
        raise ValueError("duration and mean_outage must be > 0")
    hosts = pnet.hosts
    events: List[FaultEvent] = []
    for __ in range(n_flaps):
        plane_idx = rng.randrange(pnet.n_planes)
        host = hosts[rng.randrange(len(hosts))]
        start = rng.uniform(0.0, duration)
        outage = rng.expovariate(1.0 / mean_outage)
        events.append(FaultEvent(
            at=start, kind=HOST_UPLINK_DOWN, plane=plane_idx, host=host,
        ))
        events.append(FaultEvent(
            at=start + outage, kind=HOST_UPLINK_UP, plane=plane_idx,
            host=host,
        ))
    return FaultSchedule(events)
