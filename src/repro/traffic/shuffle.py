"""Hadoop-style sort workload generator (paper section 5.2.2).

The paper simulates a sort over ``total_bytes`` (100 GB) with ``n_mappers``
(32) and ``n_reducers`` (32) placed on a cluster, running three network
stages:

1. **read input** -- each mapper loads its share of the input in
   ``block_bytes`` (128 MB) blocks from hosts in random remote racks;
2. **shuffle** -- every (mapper, reducer) pair exchanges an equal bucket,
   ``total / (n_mappers * n_reducers)`` bytes (~100 MB);
3. **write output** -- each reducer writes its sorted output in blocks to
   a replica in a random rack.

Workers read/write at most ``concurrency`` (4) blocks at a time; the
experiment driver enforces that bound.  Each stage's flows are produced
here as plain (src, dst, bytes, worker) tuples so any simulator can run
them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class ShuffleFlow:
    """One transfer of a shuffle job, attributed to a worker."""

    src: str
    dst: str
    size: int
    worker: str  # the mapper/reducer whose completion time it counts toward


@dataclass
class ShuffleJob:
    """A three-stage Hadoop-like sort job.

    Args:
        hosts: cluster hosts; mappers/reducers/replicas are drawn from it.
        total_bytes: job input size (paper: 100 GB).
        n_mappers / n_reducers: worker counts (paper: 32 / 32).
        block_bytes: I/O block size (paper: 128 MB).
        concurrency: max in-flight blocks per worker (paper: 4).
        seed: placement RNG seed.
    """

    hosts: Sequence[str]
    total_bytes: int
    n_mappers: int = 32
    n_reducers: int = 32
    block_bytes: int = 128 * 10**6
    concurrency: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.n_mappers + self.n_reducers > len(self.hosts):
            raise ValueError(
                f"{len(self.hosts)} hosts cannot place "
                f"{self.n_mappers} mappers + {self.n_reducers} reducers"
            )
        if self.total_bytes <= 0 or self.block_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        rng = random.Random(f"shuffle-{self.seed}")
        chosen = rng.sample(list(self.hosts), self.n_mappers + self.n_reducers)
        self.mappers: List[str] = chosen[: self.n_mappers]
        self.reducers: List[str] = chosen[self.n_mappers:]
        self._rng = rng

    def _random_remote(self, worker: str) -> str:
        """A uniformly random host other than ``worker``."""
        other = self._rng.choice(list(self.hosts))
        while other == worker:
            other = self._rng.choice(list(self.hosts))
        return other

    def read_input_flows(self) -> List[ShuffleFlow]:
        """Stage 1: mappers pull input blocks from random remote hosts."""
        per_mapper = self.total_bytes // self.n_mappers
        flows = []
        for mapper in self.mappers:
            remaining = per_mapper
            while remaining > 0:
                size = min(self.block_bytes, remaining)
                src = self._random_remote(mapper)
                flows.append(ShuffleFlow(src=src, dst=mapper, size=size,
                                         worker=mapper))
                remaining -= size
        return flows

    def shuffle_flows(self) -> List[ShuffleFlow]:
        """Stage 2: the all-to-all mapper->reducer bucket exchange."""
        bucket = self.total_bytes // (self.n_mappers * self.n_reducers)
        return [
            ShuffleFlow(src=mapper, dst=reducer, size=bucket, worker=mapper)
            for mapper in self.mappers
            for reducer in self.reducers
        ]

    def write_output_flows(self) -> List[ShuffleFlow]:
        """Stage 3: reducers push sorted output blocks to random replicas."""
        per_reducer = self.total_bytes // self.n_reducers
        flows = []
        for reducer in self.reducers:
            remaining = per_reducer
            while remaining > 0:
                size = min(self.block_bytes, remaining)
                dst = self._random_remote(reducer)
                flows.append(ShuffleFlow(src=reducer, dst=dst, size=size,
                                         worker=reducer))
                remaining -= size
        return flows

    def stages(self) -> Dict[str, List[ShuffleFlow]]:
        """All three stages keyed by name, in execution order."""
        return {
            "read_input": self.read_input_flows(),
            "shuffle": self.shuffle_flows(),
            "write_output": self.write_output_flows(),
        }
