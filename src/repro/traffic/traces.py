"""Published datacenter flow-size distributions (paper section 5.3).

The paper replays flow sizes drawn from five published traces:

* **websearch** -- the web-search workload of DCTCP [6];
* **datamining** -- the data-mining workload of VL2 [22];
* **webserver**, **cache**, **hadoop** -- Facebook's production clusters
  as characterised by Roy et al. [35].

Like the paper's artifact ("we captured the CDF curves from figures in
these papers and saved them as CSV files"), we encode each distribution as
a piecewise curve of (flow size, cumulative probability) control points
digitised from the published figures, and sample by inverse transform with
log-linear interpolation between points.

Absolute fidelity to the original traces is limited by figure resolution;
what the experiments rely on -- and what these curves preserve -- is each
workload's *character*: websearch mixes mice with multi-MB flows,
datamining is extremely heavy-tailed (most flows under 2 kB, most bytes in
100 MB+ flows), and the Facebook workloads sit in between.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.units import GB, KB, MB


@dataclass(frozen=True)
class FlowSizeCDF:
    """A flow-size distribution given by CDF control points.

    Attributes:
        name: trace label.
        points: (size_bytes, cumulative_probability) pairs, strictly
            increasing in both coordinates, ending at probability 1.0.
    """

    name: str
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("need at least two CDF points")
        prev_size, prev_p = self.points[0]
        if prev_p < 0:
            raise ValueError("probabilities must be >= 0")
        for size, p in self.points[1:]:
            if size <= prev_size or p < prev_p:
                raise ValueError(
                    f"{self.name}: CDF points must be increasing "
                    f"({prev_size},{prev_p}) -> ({size},{p})"
                )
            prev_size, prev_p = size, p
        if abs(self.points[-1][1] - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: CDF must end at 1.0")

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes) by inverse-transform sampling."""
        return self.quantile(rng.random())

    def sample_many(self, n: int, rng: random.Random) -> List[int]:
        return [self.quantile(rng.random()) for __ in range(n)]

    def quantile(self, p: float) -> int:
        """Flow size at cumulative probability ``p`` (log-interpolated)."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0,1], got {p}")
        points = self.points
        if p <= points[0][1]:
            return int(round(points[0][0]))
        for (s0, p0), (s1, p1) in zip(points, points[1:]):
            if p <= p1:
                if p1 == p0:
                    return int(round(s1))
                frac = (p - p0) / (p1 - p0)
                log_size = math.log(s0) + frac * (math.log(s1) - math.log(s0))
                return max(1, int(round(math.exp(log_size))))
        return int(round(points[-1][0]))

    def mean(self, samples: int = 20001) -> float:
        """Numerical mean via quantile integration (deterministic)."""
        total = 0.0
        for i in range(samples):
            total += self.quantile((i + 0.5) / samples)
        return total / samples

    def cdf_at(self, size: float) -> float:
        """Cumulative probability at a given size (log-interpolated)."""
        points = self.points
        if size <= points[0][0]:
            return points[0][1]
        for (s0, p0), (s1, p1) in zip(points, points[1:]):
            if size <= s1:
                frac = (math.log(size) - math.log(s0)) / (
                    math.log(s1) - math.log(s0)
                )
                return p0 + frac * (p1 - p0)
        return 1.0


#: Web search (DCTCP [6], Fig. 4): query + background mix; flows from a
#: few kB to ~30 MB, ~30% of flows above 100 kB carrying most bytes.
WEBSEARCH = FlowSizeCDF(
    "websearch",
    (
        (6 * KB, 0.0),
        (10 * KB, 0.15),
        (13 * KB, 0.20),
        (19 * KB, 0.30),
        (33 * KB, 0.40),
        (53 * KB, 0.53),
        (133 * KB, 0.60),
        (667 * KB, 0.70),
        (1467 * KB, 0.80),
        (3333 * KB, 0.90),
        (6667 * KB, 0.97),
        (20 * MB, 0.999),
        (30 * MB, 1.0),
    ),
)

#: Data mining (VL2 [22], Fig. 2): extremely heavy-tailed; >50% of flows
#: under ~1 kB but most bytes in flows over 100 MB.
DATAMINING = FlowSizeCDF(
    "datamining",
    (
        (100, 0.0),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1100, 0.50),
        (2 * KB, 0.60),
        (10 * KB, 0.70),
        (100 * KB, 0.80),
        (1 * MB, 0.90),
        (10 * MB, 0.95),
        (100 * MB, 0.98),
        (1 * GB, 1.0),
    ),
)

#: Facebook web servers (Roy et al. [35]): dominated by small responses;
#: median around 2 kB, tail to ~10 MB.
WEBSERVER = FlowSizeCDF(
    "webserver",
    (
        (100, 0.0),
        (300, 0.10),
        (700, 0.25),
        (1300, 0.40),
        (2 * KB, 0.50),
        (5 * KB, 0.70),
        (20 * KB, 0.85),
        (100 * KB, 0.95),
        (1 * MB, 0.99),
        (10 * MB, 1.0),
    ),
)

#: Facebook cache followers [35]: mid-sized object transfers; median in
#: the tens of kB, tail to ~100 MB.
CACHE = FlowSizeCDF(
    "cache",
    (
        (1 * KB, 0.0),
        (2 * KB, 0.10),
        (5 * KB, 0.25),
        (20 * KB, 0.45),
        (70 * KB, 0.60),
        (300 * KB, 0.75),
        (1 * MB, 0.85),
        (5 * MB, 0.93),
        (30 * MB, 0.98),
        (100 * MB, 1.0),
    ),
)

#: Facebook Hadoop [35]: mostly small control/shuffle pieces with a
#: moderate tail; median ~1 kB, tail to ~100 MB.
HADOOP = FlowSizeCDF(
    "hadoop",
    (
        (150, 0.0),
        (300, 0.10),
        (600, 0.30),
        (1 * KB, 0.50),
        (3 * KB, 0.65),
        (10 * KB, 0.75),
        (100 * KB, 0.85),
        (1 * MB, 0.92),
        (10 * MB, 0.97),
        (100 * MB, 1.0),
    ),
)

#: All five published traces, keyed by name (Figure 13a / Appendix A).
TRACES = {
    cdf.name: cdf
    for cdf in (WEBSEARCH, DATAMINING, WEBSERVER, CACHE, HADOOP)
}
