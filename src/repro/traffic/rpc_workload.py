"""Ping-pong RPC workload specification (paper section 5.2.1).

Each host runs one or more closed-loop RPC chains: send a request of
``request_bytes`` to a random server, wait for the ``response_bytes``
response, record the end-to-end completion time, repeat for ``rounds``.
The paper uses 1500 B (one MTU) requests for the latency study and 100 kB
requests for the concurrency study, with 1--10 concurrent chains per host.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.units import MTU


@dataclass
class RpcWorkload:
    """A closed-loop request/response workload.

    Args:
        hosts: participating hosts (every host is client and server).
        request_bytes: request payload (paper: 1500 B or 100 kB).
        response_bytes: response payload (paper: same MTU-sized response).
        rounds: requests per chain.
        concurrency: independent chains per host (paper: 1-10).
        seed: destination RNG seed.
    """

    hosts: Sequence[str]
    request_bytes: int = MTU
    response_bytes: int = MTU
    rounds: int = 1000
    concurrency: int = 1
    seed: int = 0

    def __post_init__(self):
        if len(self.hosts) < 2:
            raise ValueError("need at least two hosts")
        if min(self.request_bytes, self.response_bytes) <= 0:
            raise ValueError("payload sizes must be positive")
        if self.rounds < 1 or self.concurrency < 1:
            raise ValueError("rounds and concurrency must be >= 1")

    def chains(self) -> List[Tuple[str, int]]:
        """(client, chain_index) for every chain in the workload."""
        return [
            (host, chain)
            for host in self.hosts
            for chain in range(self.concurrency)
        ]

    def destination_sequence(self, client: str, chain: int) -> List[str]:
        """The random server sequence one chain visits (deterministic)."""
        rng = random.Random(f"rpc-{self.seed}-{client}-{chain}")
        others = [h for h in self.hosts if h != client]
        return [rng.choice(others) for __ in range(self.rounds)]
