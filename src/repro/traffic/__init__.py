"""Workload generators: synthetic patterns, trace CDFs, and applications."""

from repro.traffic.patterns import (
    all_to_all,
    host_pairs_by_rack,
    permutation,
    rack_level_all_to_all,
)
from repro.traffic.traces import (
    CACHE,
    DATAMINING,
    HADOOP,
    TRACES,
    WEBSEARCH,
    WEBSERVER,
    FlowSizeCDF,
)
from repro.traffic.shuffle import ShuffleJob
from repro.traffic.rpc_workload import RpcWorkload

__all__ = [
    "all_to_all",
    "permutation",
    "rack_level_all_to_all",
    "host_pairs_by_rack",
    "FlowSizeCDF",
    "WEBSEARCH",
    "DATAMINING",
    "WEBSERVER",
    "CACHE",
    "HADOOP",
    "TRACES",
    "ShuffleJob",
    "RpcWorkload",
]
