"""Open-loop Poisson flow arrivals at a target load.

The closed-loop replay of section 5.3 keeps a fixed number of flows per
host; FCT studies also commonly drive the fabric *open loop*: flows
arrive by a Poisson process whose rate is set so offered traffic equals a
chosen fraction of the network's edge capacity.  This generator supports
that style for any flow-size distribution in :mod:`repro.traffic.traces`.

The arrival rate is derived as::

    lambda_total = load * n_hosts * host_rate / (8 * mean_flow_bytes)

so at ``load = 0.6`` the expected offered bytes equal 60% of the hosts'
aggregate uplink capacity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.traffic.traces import FlowSizeCDF


@dataclass(frozen=True)
class OpenLoopFlow:
    """One generated arrival."""

    arrival: float
    src: str
    dst: str
    size: int


def poisson_flows(
    hosts: Sequence[str],
    trace: FlowSizeCDF,
    load: float,
    host_rate: float,
    duration: float,
    seed: int = 0,
    mean_samples: int = 2001,
) -> List[OpenLoopFlow]:
    """Generate Poisson arrivals over ``duration`` seconds at ``load``.

    Sources and destinations are uniform random distinct hosts; sizes are
    i.i.d. from ``trace``.  Deterministic given the seed.

    Args:
        load: offered load as a fraction of aggregate host uplink
            capacity, in (0, 1].
        host_rate: one host's uplink capacity, bits/s (for a P-Net, the
            sum over planes).
    """
    if not 0 < load <= 1:
        raise ValueError(f"load must be in (0, 1], got {load}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    rng = random.Random(f"openloop-{seed}")
    mean_bytes = trace.mean(samples=mean_samples)
    rate_per_host = load * host_rate / (8 * mean_bytes)
    lam = rate_per_host * len(hosts)

    flows: List[OpenLoopFlow] = []
    t = 0.0
    while True:
        t += rng.expovariate(lam)
        if t >= duration:
            break
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        flows.append(
            OpenLoopFlow(
                arrival=t, src=src, dst=dst, size=trace.sample(rng)
            )
        )
    return flows


def offered_load(
    flows: Sequence[OpenLoopFlow],
    n_hosts: int,
    host_rate: float,
    duration: float,
) -> float:
    """Realised offered load of a generated arrival list."""
    total_bits = sum(f.size for f in flows) * 8
    return total_bits / (duration * n_hosts * host_rate)
