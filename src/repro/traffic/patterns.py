"""Synthetic traffic matrices: all-to-all and permutation (section 5.1).

The paper contrasts *dense* traffic (all-to-all: every host talks to every
other host) with *sparse* traffic (permutation: every host talks to exactly
one other host).  Dense patterns saturate parallel planes even under naive
routing; sparse patterns are where path selection makes or breaks a P-Net.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

Pair = Tuple[str, str]


def all_to_all(hosts: Sequence[str]) -> List[Pair]:
    """Every ordered pair of distinct hosts."""
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    return [(a, b) for a in hosts for b in hosts if a != b]


def permutation(hosts: Sequence[str], rng: random.Random) -> List[Pair]:
    """A random permutation traffic matrix (derangement).

    Every host sends to exactly one host and receives from exactly one,
    and never to itself -- the paper's sparse pattern.
    """
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    senders = list(hosts)
    receivers = list(hosts)
    # Retry shuffles until no fixed point (expected ~e tries).
    for __ in range(1000):
        rng.shuffle(receivers)
        if all(s != r for s, r in zip(senders, receivers)):
            return list(zip(senders, receivers))
    # Deterministic fallback: rotate by one.
    rotated = senders[1:] + senders[:1]
    return list(zip(senders, rotated))


def rack_level_all_to_all(racks: Sequence[str]) -> List[Pair]:
    """Every ordered pair of distinct racks (Figure 7's traffic)."""
    return all_to_all(racks)


def host_pairs_by_rack(
    hosts: Sequence[str], hosts_per_rack: int
) -> Dict[int, List[str]]:
    """Group ``h{i}``-named hosts into racks of ``hosts_per_rack``.

    Matches the builders' attachment rule (host ``h{i}`` lives under
    switch ``t{i // hosts_per_rack}``).
    """
    if hosts_per_rack < 1:
        raise ValueError("hosts_per_rack must be >= 1")
    racks: Dict[int, List[str]] = {}
    for host in hosts:
        idx = int(host[1:])
        racks.setdefault(idx // hosts_per_rack, []).append(host)
    return racks


def random_pairs(
    hosts: Sequence[str], count: int, rng: random.Random
) -> List[Pair]:
    """``count`` uniform random (src, dst) pairs with src != dst."""
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    pairs = []
    for __ in range(count):
        src = rng.choice(hosts)
        dst = rng.choice(hosts)
        while dst == src:
            dst = rng.choice(hosts)
        pairs.append((src, dst))
    return pairs
