"""Flow-level fluid simulator.

Packet-level simulation of multi-gigabyte flows at 100 Gb/s is
prohibitively slow in pure Python, so bulk-transfer experiments
(Figures 9, 12, 13, 16-20) run on a fluid model instead:

* active flows share each link max-min fairly
  (:func:`repro.fluid.maxmin.max_min_rates`, recomputed on every arrival
  and departure) -- the steady state TCP/MPTCP approximates;
* each subflow's rate is additionally capped by a slow-start ramp that
  starts at ``IW * MSS / RTT`` and doubles every RTT, capturing the
  small-flow transients the paper highlights in section 5.1.2.
"""

from repro.fluid.maxmin import max_min_rates
from repro.fluid.flowsim import FlowRecord, FluidSimulator

__all__ = ["max_min_rates", "FluidSimulator", "FlowRecord"]
