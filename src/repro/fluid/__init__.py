"""Flow-level fluid simulator.

Packet-level simulation of multi-gigabyte flows at 100 Gb/s is
prohibitively slow in pure Python, so bulk-transfer experiments
(Figures 9, 12, 13, 16-20) run on a fluid model instead:

* active flows share each link max-min fairly
  (:func:`repro.fluid.maxmin.max_min_rates`, recomputed on every arrival
  and departure) -- the steady state TCP/MPTCP approximates;
* each subflow's rate is additionally capped by a slow-start ramp that
  starts at ``IW * MSS / RTT`` and doubles every RTT, capturing the
  small-flow transients the paper highlights in section 5.1.2.

Constructing the engine through this package
(``repro.fluid.FluidSimulator``) is **deprecated** for workload code:
use ``repro.api.build_network(planes, kind="fluid")`` so trials stay
engine-agnostic (hybrid fidelity, registry dispatch, uniform
checkpointing).  Internal wiring that genuinely needs the class imports
it from :mod:`repro.fluid.flowsim`, which never warns.
"""

import warnings

from repro.fluid.maxmin import max_min_rates

__all__ = ["max_min_rates", "FluidSimulator", "FlowRecord"]


def __getattr__(name):
    if name == "FluidSimulator":
        warnings.warn(
            "constructing engines via repro.fluid.FluidSimulator is "
            "deprecated; use repro.api.build_network(planes, "
            "kind='fluid') (internal wiring may import "
            "repro.fluid.flowsim.FluidSimulator directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.fluid.flowsim import FluidSimulator

        return FluidSimulator
    if name == "FlowRecord":
        from repro.fluid.flowsim import FlowRecord

        return FlowRecord
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
