"""Event-driven fluid flow simulator.

Flows (possibly with multiple subflows across P-Net planes) arrive, share
the network max-min fairly, and depart when their bytes are delivered.
Between events (arrival, departure, slow-start cap doubling) rates are
constant, so delivered bytes advance linearly and the next departure is
predictable exactly.

Model choices, mirroring the paper's transport discussion:

* **slow start**: a subflow's rate is capped at ``IW * MSS / RTT``
  doubling every RTT until it exceeds its path's line rate -- this is
  what lets small flows on parallel planes (more subflows in slow start)
  beat even a serial high-bandwidth network (Figure 9's left side);
* **multipath**: subflows are allocated independently (max-min treats
  each as a flow), their rates summing for the carrying flow -- the
  steady state MPTCP with enough time to probe converges to;
* **FCT**: completion time of the last byte at the receiver, i.e. the
  fluid delivery time plus half an RTT of the fastest subflow.

Closed-loop workloads hook ``on_complete`` to inject the next flow.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.flowspec import FlowSpec, warn_positional_add_flow
from repro.core.pnet import PlanePath
from repro.fluid.maxmin import max_min_rates
from repro.obs import get_registry
from repro.topology.graph import Topology
from repro.units import MSS, MTU

#: Relative tolerance for byte/rate comparisons.
_EPS = 1e-9

_UNSET = object()


@dataclass
class FlowRecord:
    """Result of one completed flow."""

    flow_id: int
    src: str
    dst: str
    size: float
    arrival: float
    completion: float
    n_subflows: int
    tag: Optional[str] = None
    #: Planes the flow's subflows used, in subflow order.
    planes: Tuple[int, ...] = field(default=())

    @property
    def fct(self) -> float:
        return self.completion - self.arrival


class _Subflow:
    __slots__ = ("links", "rtt", "cap", "next_double", "line_rate", "rate")

    def __init__(self, links: List[int], rtt: float, line_rate: float):
        self.links = links
        self.rtt = rtt
        self.line_rate = line_rate
        self.cap = math.inf
        self.next_double = math.inf
        self.rate = 0.0


class _Flow:
    __slots__ = (
        "flow_id", "src", "dst", "size", "size_bits", "arrival",
        "delivered", "subflows", "on_complete", "tag", "min_rtt", "planes",
        "paths",
    )

    def __init__(self, flow_id, src, dst, size, arrival, subflows,
                 on_complete, tag, planes=(), paths=()):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.size_bits = size * 8.0
        self.arrival = arrival
        self.delivered = 0.0  # bits
        self.subflows = subflows
        self.on_complete = on_complete
        self.tag = tag
        self.planes = planes
        self.paths = list(paths)
        self.min_rtt = min(sf.rtt for sf in subflows)

    @property
    def rate(self) -> float:
        return sum(sf.rate for sf in self.subflows)


class FluidSimulator:
    """Fluid simulation over one or more dataplanes.

    Args:
        planes: the dataplanes (one for a serial network).
        slow_start: enable the per-subflow ramp cap.
        initial_window: slow-start initial window in segments (RFC 6928's
            10 is today's datacenter default).
        mss: segment size in bytes for the ramp model.
        obs: telemetry registry; defaults to the process-wide registry
            (a no-op unless one was attached).  Iteration counts and
            high-water marks are published after each :meth:`run`.
        plane_ids: external index of each plane (defaults to
            ``0..len(planes)-1``).  A plane-sharded worker
            (:mod:`repro.shard`) simulates only its subset of planes but
            passes their *global* P-Net indices here, so FlowSpec paths,
            fault events, and records keep global plane numbering while
            the capacity vector and max-min solve stay shard-sized.
    """

    def __init__(
        self,
        planes: Sequence[Topology],
        slow_start: bool = True,
        initial_window: int = 10,
        mss: int = MSS,
        obs=None,
        plane_ids: Optional[Sequence[int]] = None,
    ):
        if not planes:
            raise ValueError("need at least one plane")
        self.planes = list(planes)
        if plane_ids is None:
            plane_ids = list(range(len(self.planes)))
        else:
            plane_ids = [int(i) for i in plane_ids]
            if len(plane_ids) != len(self.planes):
                raise ValueError(
                    f"got {len(plane_ids)} plane_ids for "
                    f"{len(self.planes)} planes"
                )
            if len(set(plane_ids)) != len(plane_ids):
                raise ValueError(f"plane_ids must be unique: {plane_ids}")
        #: External (global) index of each plane, in ``planes`` order.
        self.plane_ids = plane_ids
        self._plane_by_id = dict(zip(plane_ids, self.planes))
        self.slow_start = slow_start
        self.initial_window = initial_window
        self.mss = mss
        self.obs = obs if obs is not None else get_registry()
        #: Cumulative engine iteration counters (cheap plain ints, kept
        #: whether or not telemetry is attached).
        self.events_processed = 0
        self.rate_recomputations = 0
        self.max_active_flows = 0

        self._link_index: Dict[Tuple[int, str, str], int] = {}
        caps: List[float] = []
        props: List[float] = []
        for plane_idx, plane in zip(self.plane_ids, self.planes):
            for link in plane.live_links:
                for u, v in ((link.u, link.v), (link.v, link.u)):
                    self._link_index[(plane_idx, u, v)] = len(caps)
                    caps.append(link.capacity)
                    props.append(link.propagation)
        self._capacities = np.asarray(caps)
        self._propagations = props
        #: Directed links failed mid-run (capacity zeroed, refused for
        #: new subflows); see :meth:`fail_link` / :meth:`restore_link`.
        self._dead: set = set()

        self.now = 0.0
        self._active: List[_Flow] = []
        self._arrivals: List[Tuple[float, int, _Flow]] = []
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        # Plain ints (not itertools.count) so the simulator pickles for
        # checkpointing with its id/tie-break sequences intact.
        self._next_id = 0
        self._seq = 0
        self.records: List[FlowRecord] = []

    # --- flow submission ---------------------------------------------------

    def _path_to_links(self, plane_path: PlanePath) -> Tuple[List[int], float, float]:
        """(link ids, rtt estimate, line rate) for one tagged path."""
        plane_idx, path = plane_path
        links = []
        rtt = 0.0
        line_rate = math.inf
        for u, v in zip(path, path[1:]):
            try:
                idx = self._link_index[(plane_idx, u, v)]
            except KeyError:
                raise ValueError(
                    f"{u}->{v} is not a live link of plane {plane_idx}"
                ) from None
            if (plane_idx, u, v) in self._dead:
                raise ValueError(
                    f"{u}->{v} is not a live link of plane {plane_idx}"
                )
            links.append(idx)
            cap = self._capacities[idx]
            line_rate = min(line_rate, cap)
            # Round trip: data MTU one way, 40B ACK back, plus both
            # propagation legs.
            rtt += 2 * self._propagations[idx]
            rtt += MTU * 8 / cap + 40 * 8 / cap
        return links, rtt, line_rate

    def add_flow(
        self,
        src=_UNSET,
        dst: Optional[str] = None,
        size: Optional[float] = None,
        paths: Optional[Sequence[PlanePath]] = None,
        at: Optional[float] = None,
        on_complete: Optional[Callable[[FlowRecord], None]] = None,
        tag: Optional[str] = None,
        *,
        spec: Optional[FlowSpec] = None,
    ) -> int:
        """Schedule a flow described by a :class:`FlowSpec`.

        Preferred form::

            sim.add_flow(spec=FlowSpec(src="h0", dst="h1", size=1e6,
                                       paths=paths))

        Returns the flow id.  ``on_complete`` fires (during :meth:`run`)
        when the last byte is delivered, and may call :meth:`add_flow`
        again for closed-loop workloads.  ``spec.transport`` is ignored
        (the fluid model has no transport knob).

        The legacy positional form ``add_flow(src, dst, size, paths,
        ...)`` still works but emits a :class:`DeprecationWarning`.
        """
        if spec is None and isinstance(src, FlowSpec):
            spec, src = src, _UNSET
        if spec is not None:
            if src is not _UNSET or dst is not None or size is not None \
                    or paths is not None:
                raise TypeError(
                    "pass either a FlowSpec or the legacy positional "
                    "arguments, not both"
                )
        else:
            if src is _UNSET or dst is None or size is None or paths is None:
                raise TypeError(
                    "add_flow requires spec=FlowSpec(...) (or the "
                    "deprecated src, dst, size, paths arguments)"
                )
            warn_positional_add_flow("add_flow")
            spec = FlowSpec(
                src=src, dst=dst, size=size, paths=paths, at=at,
                tag=tag, on_complete=on_complete,
            )
        return self._submit(spec)

    def _submit(self, spec: FlowSpec) -> int:
        start = self.now if spec.at is None else float(spec.at)
        if start < self.now - _EPS:
            raise ValueError(
                f"cannot schedule in the past ({start} < {self.now})"
            )
        subflows = []
        for plane_path in spec.paths:
            links, rtt, line_rate = self._path_to_links(plane_path)
            if not links:
                raise ValueError("subflow path must traverse at least one link")
            subflows.append(_Subflow(links, rtt, line_rate))
        flow_id = self._next_id
        self._next_id += 1
        flow = _Flow(flow_id, spec.src, spec.dst, float(spec.size), start,
                     subflows, spec.on_complete, spec.tag, spec.planes,
                     paths=spec.paths)
        heapq.heappush(self._arrivals, (start, self._seq, flow))
        self._seq += 1
        return flow_id

    # --- control-plane hooks ------------------------------------------------

    def schedule(self, at: float, fn: Callable[[], None]) -> None:
        """Run a callback at simulated time ``at`` (for controllers).

        Callbacks run between rate recomputations and may add flows,
        migrate flows, or re-schedule themselves (periodic controllers).
        """
        if at < self.now - _EPS:
            raise ValueError(f"cannot schedule in the past ({at} < {self.now})")
        heapq.heappush(self._timers, (at, self._seq, fn))
        self._seq += 1

    def active_flows(self) -> List[Tuple[int, str, str, float]]:
        """(flow_id, src, dst, current total rate) of in-flight flows."""
        return [
            (f.flow_id, f.src, f.dst, f.rate) for f in self._active
        ]

    def active_flow_paths(self) -> List[Tuple[int, str, str, List[PlanePath]]]:
        """(flow_id, src, dst, subflow paths) of in-flight flows.

        The path view fault injection needs: which flows traverse a
        just-failed element (and must be migrated or aborted).
        """
        return [
            (f.flow_id, f.src, f.dst, list(f.paths)) for f in self._active
        ]

    def active_subflow_views(self):
        """(flow_id, src, dst, size, paths, per-subflow rates) of
        in-flight flows -- the control plane's sampling hook."""
        return [
            (
                f.flow_id, f.src, f.dst, f.size, list(f.paths),
                [sf.rate for sf in f.subflows],
            )
            for f in self._active
        ]

    def aggregate_rate(self) -> float:
        """Total delivery rate of all active flows, bits/s."""
        return sum(f.rate for f in self._active)

    @property
    def delivered_bytes(self) -> float:
        """Bytes delivered so far: completed flows plus in-flight progress."""
        total = sum(r.size for r in self.records)
        total += sum(f.delivered for f in self._active) / 8.0
        return float(total)

    def flow_rate(self, flow_id: int) -> Optional[float]:
        for flow in self._active:
            if flow.flow_id == flow_id:
                return flow.rate
        return None

    def link_usage(self, exclude_flow: Optional[int] = None) -> "np.ndarray":
        """Current per-directed-link bits/s committed by active subflows.

        Args:
            exclude_flow: leave this flow's own usage out -- the view an
                end host takes when deciding whether *its* flow would be
                better off elsewhere (its own traffic moves with it).
        """
        usage = np.zeros(len(self._capacities))
        for flow in self._active:
            if flow.flow_id == exclude_flow:
                continue
            for sf in flow.subflows:
                for idx in sf.links:
                    usage[idx] += sf.rate
        return usage

    def path_available_bandwidth(
        self, plane_path: PlanePath, exclude_flow: Optional[int] = None
    ) -> float:
        """Bottleneck headroom along a path at current rates."""
        links, __, __ = self._path_to_links(plane_path)
        usage = self.link_usage(exclude_flow=exclude_flow)
        return float(
            min(self._capacities[idx] - usage[idx] for idx in links)
        )

    def migrate_flow(
        self, flow_id: int, paths: Sequence[PlanePath]
    ) -> bool:
        """Re-route an active flow onto new subflow paths.

        Delivered bytes are preserved; the new subflows restart their
        slow-start ramp (a real path migration re-probes).  Returns False
        if the flow is no longer active.
        """
        if not paths:
            raise ValueError("need at least one path")
        for flow in self._active:
            if flow.flow_id == flow_id:
                old_rate = flow.rate
                subflows = []
                for plane_path in paths:
                    links, rtt, line_rate = self._path_to_links(plane_path)
                    if not links:
                        raise ValueError("path must traverse a link")
                    subflows.append(_Subflow(links, rtt, line_rate))
                # Carry the previous rate over as a provisional estimate
                # so that same-instant observers (e.g. other hosts'
                # adaptive routers) see the moved traffic before the next
                # recomputation -- otherwise two hosts migrating in the
                # same control epoch pile onto the same "empty" path.
                for sf in subflows:
                    sf.rate = old_rate / len(subflows)
                flow.subflows = subflows
                flow.paths = list(paths)
                flow.planes = tuple(plane for plane, __ in paths)
                flow.min_rtt = min(sf.rtt for sf in subflows)
                self._start_ramp(flow)
                return True
        return False

    def abort_flow(self, flow_id: int) -> bool:
        """Drop an active flow without completing it (no record).

        Fault injection's last resort when a flow's endpoints are fully
        partitioned: a stalled zero-rate flow would otherwise deadlock
        the engine.  Returns False if the flow is not active.
        """
        for flow in self._active:
            if flow.flow_id == flow_id:
                self._active.remove(flow)
                return True
        return False

    # --- mid-run failures ---------------------------------------------------

    def fail_link(self, plane_idx: int, u: str, v: str) -> None:
        """Cut a link during the simulation (both directions).

        The topology is marked failed, the directed capacities drop to
        zero (max-min pins subflows crossing them at rate 0), and new
        subflows over the link are rejected.  Callers must migrate or
        abort the affected flows -- :class:`repro.faults.FaultInjector`
        does both -- or the engine will report a stall once no other
        event is pending.
        """
        self._plane_of(plane_idx).fail_link(u, v)
        for a, b in ((u, v), (v, u)):
            idx = self._link_index.get((plane_idx, a, b))
            if idx is not None:
                self._capacities[idx] = 0.0
                self._dead.add((plane_idx, a, b))

    def _plane_of(self, plane_idx: int) -> Topology:
        """The plane topology for an external plane index."""
        try:
            return self._plane_by_id[plane_idx]
        except KeyError:
            raise ValueError(
                f"plane {plane_idx} is not simulated here "
                f"(have {sorted(self._plane_by_id)})"
            ) from None

    def restore_link(self, plane_idx: int, u: str, v: str) -> None:
        """Undo :meth:`fail_link`: capacity returns, new subflows accepted."""
        plane = self._plane_of(plane_idx)
        plane.restore_link(u, v)
        capacity = plane.link(u, v).capacity
        for a, b in ((u, v), (v, u)):
            idx = self._link_index.get((plane_idx, a, b))
            if idx is not None:
                self._capacities[idx] = capacity
                self._dead.discard((plane_idx, a, b))

    # --- engine --------------------------------------------------------------

    def _start_ramp(self, flow: _Flow) -> None:
        if not self.slow_start:
            return
        for sf in flow.subflows:
            initial = self.initial_window * self.mss * 8 / sf.rtt
            if initial >= sf.line_rate:
                sf.cap = math.inf
                sf.next_double = math.inf
            else:
                sf.cap = initial
                sf.next_double = self.now + sf.rtt

    def _activate(self, flow: _Flow) -> None:
        self._start_ramp(flow)
        self._active.append(flow)
        if len(self._active) > self.max_active_flows:
            self.max_active_flows = len(self._active)

    def _recompute_rates(self, count: bool = True) -> None:
        subflows: List[_Subflow] = [
            sf for flow in self._active for sf in flow.subflows
        ]
        if not subflows:
            return
        if count:
            self.rate_recomputations += 1
        rates = max_min_rates(
            self._capacities,
            [sf.links for sf in subflows],
            [sf.cap for sf in subflows],
        )
        for sf, rate in zip(subflows, rates):
            sf.rate = float(rate)

    def _next_event_time(self) -> Optional[float]:
        candidates: List[float] = []
        if self._arrivals:
            candidates.append(self._arrivals[0][0])
        if self._timers:
            candidates.append(self._timers[0][0])
        for flow in self._active:
            rate = flow.rate
            if rate > 0:
                remaining = flow.size_bits - flow.delivered
                candidates.append(self.now + max(remaining, 0.0) / rate)
            for sf in flow.subflows:
                if math.isfinite(sf.next_double):
                    candidates.append(sf.next_double)
        return min(candidates) if candidates else None

    def peek_next_event_time(self) -> Optional[float]:
        """When the next event boundary falls, without advancing anything.

        Returns ``None`` when the engine is fully drained, the current
        clock when admissions/callbacks are already due, ``math.inf``
        when active flows are stalled (a subsequent :meth:`run` raises),
        and the boundary time otherwise.  The co-simulation layer
        (:mod:`repro.hybrid`) uses this to advance the packet engine up
        to each fluid boundary before stepping across it.

        The peek is pure with respect to the simulated trajectory: the
        rate recomputation it performs writes the exact values the next
        :meth:`run` step would (max-min rates are a deterministic
        function of the active set), and it is left out of the
        ``rate_recomputations`` counter so stepped runs stay
        telemetry-identical to uninterrupted ones.
        """
        if not (self._active or self._arrivals or self._timers):
            return None
        due = self.now + _EPS
        heads: List[float] = []
        if self._arrivals:
            heads.append(self._arrivals[0][0])
        if self._timers:
            heads.append(self._timers[0][0])
        if heads and min(heads) <= due:
            return self.now
        if not self._active:
            return min(heads)
        self._recompute_rates(count=False)
        t_next = self._next_event_time()
        if t_next is None or not math.isfinite(t_next):
            return math.inf
        return t_next

    def _complete(self, flow: _Flow) -> None:
        record = FlowRecord(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            arrival=flow.arrival,
            # Fluid delivery time plus last-byte propagation.
            completion=self.now + flow.min_rtt / 2,
            n_subflows=len(flow.subflows),
            tag=flow.tag,
            planes=tuple(flow.planes),
        )
        self.records.append(record)
        if self.obs.enabled:
            self.obs.trace(
                "fluid.flow.complete", record.completion,
                flow_id=record.flow_id, src=record.src, dst=record.dst,
                size=record.size, fct=record.fct,
                planes=list(record.planes),
            )
        if flow.on_complete is not None:
            flow.on_complete(record)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
        stop_after: Optional[float] = None,
    ) -> List[FlowRecord]:
        """Run to completion (or ``until``); returns all flow records.

        ``stop_after`` pauses the engine at the first *event boundary* at
        or past that time, without the horizon crediting ``until``
        performs.  That keeps the paused state a pure event-boundary
        state: resuming with a later ``run()`` call replays the exact
        floating-point trajectory of an uninterrupted run, which is what
        :mod:`repro.ckpt` snapshots rely on (crediting partial intervals
        at an arbitrary cut point would perturb downstream completion
        times by ulps).  Use ``until`` for the final segment, where the
        horizon-exact ``delivered_bytes`` semantics matter.
        """
        events = 0
        recomputes_before = self.rate_recomputations
        timing = self.obs.enabled
        t0 = time.perf_counter() if timing else 0.0
        while self._active or self._arrivals or self._timers:
            if stop_after is not None and self.now >= stop_after:
                break
            events += 1
            if events > max_events:
                raise RuntimeError(f"exceeded {max_events} events")

            # Admit arrivals and fire control callbacks due now before
            # computing rates.
            while self._arrivals and self._arrivals[0][0] <= self.now + _EPS:
                __, __, flow = heapq.heappop(self._arrivals)
                self._activate(flow)
            while self._timers and self._timers[0][0] <= self.now + _EPS:
                __, __, fn = heapq.heappop(self._timers)
                fn()
            if not self._active:
                if not self._arrivals and not self._timers:
                    break
                # Jump to the next scheduled thing.
                pending = []
                if self._arrivals:
                    pending.append(self._arrivals[0][0])
                if self._timers:
                    pending.append(self._timers[0][0])
                target = min(pending)
                if until is not None and target > until:
                    self.now = until
                    break
                self.now = target
                continue

            self._recompute_rates()
            t_next = self._next_event_time()
            if t_next is None or not math.isfinite(t_next):
                raise RuntimeError(
                    "simulation stalled: active flows with zero rate "
                    "and no pending events"
                )
            if until is not None and t_next > until:
                # Credit in-flight progress up to the horizon before
                # stopping, so delivered_bytes is exact at ``until``.
                dt = max(until - self.now, 0.0)
                for flow in self._active:
                    flow.delivered += flow.rate * dt
                self.now = until
                break
            dt = max(t_next - self.now, 0.0)

            for flow in self._active:
                flow.delivered += flow.rate * dt
            self.now = t_next

            # Completions (iterate over a copy: callbacks may add flows).
            finished = [
                f
                for f in self._active
                if f.delivered >= f.size_bits * (1 - _EPS) - _EPS
            ]
            if finished:
                self._active = [f for f in self._active if f not in finished]
                for flow in finished:
                    self._complete(flow)

            # Slow-start cap doublings due now.
            for flow in self._active:
                for sf in flow.subflows:
                    while sf.next_double <= self.now + _EPS:
                        sf.cap *= 2
                        if sf.cap >= sf.line_rate:
                            sf.cap = math.inf
                            sf.next_double = math.inf
                        else:
                            sf.next_double += sf.rtt
        self.events_processed += events
        if timing:
            obs = self.obs
            obs.counter("fluid.events").inc(events)
            obs.counter("fluid.rate_recomputations").inc(
                self.rate_recomputations - recomputes_before
            )
            obs.gauge("fluid.max_active_flows").max(self.max_active_flows)
            obs.histogram("fluid.run_seconds", wallclock=True).observe(
                time.perf_counter() - t0
            )
        return self.records
