"""Max-min fair rate allocation by progressive filling.

Given directed link capacities and, per flow, the list of links it
crosses (plus an optional per-flow rate cap, used for the slow-start ramp
model), compute the max-min fair allocation: rates are raised together
until a link saturates; flows through saturated links freeze at their fair
share; repeat with the rest.

A flow capped below its fair share freezes at its cap instead, releasing
the unused share to others -- the standard cap extension.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np


def max_min_rates(
    capacities: Sequence[float],
    flow_links: Sequence[Sequence[int]],
    flow_caps: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Max-min fair rates for ``flow_links`` over ``capacities``.

    Args:
        capacities: per-directed-link capacity (bits/s).
        flow_links: per flow, the directed link indices it traverses.
            A flow with no links (e.g. src == dst at this abstraction)
            is only limited by its cap (or infinity).
        flow_caps: optional per-flow maximum rate (``math.inf`` for none).

    Returns:
        numpy array of per-flow rates.
    """
    n_links = len(capacities)
    n_flows = len(flow_links)
    caps_arr = np.asarray(capacities, dtype=float)
    if np.any(caps_arr < 0):
        raise ValueError("capacities must be >= 0")
    if flow_caps is None:
        flow_caps = [math.inf] * n_flows
    elif len(flow_caps) != n_flows:
        raise ValueError("flow_caps length must match flow_links")

    rates = np.zeros(n_flows)
    if n_flows == 0:
        return rates

    remaining = caps_arr.copy()
    count = np.zeros(n_links, dtype=np.int64)
    link_flows: List[List[int]] = [[] for __ in range(n_links)]
    unfrozen = np.ones(n_flows, dtype=bool)

    for f_idx, links in enumerate(flow_links):
        for l_idx in links:
            count[l_idx] += 1
            link_flows[l_idx].append(f_idx)
        if not links:
            # Unconstrained by the network: freeze at the cap now.
            rates[f_idx] = flow_caps[f_idx]
            unfrozen[f_idx] = False

    scale = float(caps_arr.max()) if n_links else 1.0
    eps = 1e-12 * max(scale, 1.0)

    def freeze(f_idx: int, rate: float) -> None:
        rates[f_idx] = rate
        unfrozen[f_idx] = False
        for l_idx in flow_links[f_idx]:
            remaining[l_idx] -= rate
            if remaining[l_idx] < 0:
                remaining[l_idx] = 0.0
            count[l_idx] -= 1

    while unfrozen.any():
        active_links = count > 0
        if active_links.any():
            shares = np.where(
                active_links, remaining / np.maximum(count, 1), np.inf
            )
            s_link = float(shares.min())
        else:
            s_link = math.inf

        # Flows whose ramp cap binds before the fair share freeze at it.
        capped = [
            f_idx
            for f_idx in np.flatnonzero(unfrozen)
            if flow_caps[f_idx] <= s_link + eps
        ]
        if capped:
            for f_idx in capped:
                freeze(f_idx, float(flow_caps[f_idx]))
            continue

        if not math.isfinite(s_link):
            # No capacity constraint and no finite caps left.
            for f_idx in np.flatnonzero(unfrozen):
                rates[f_idx] = math.inf
                unfrozen[f_idx] = False
            break

        bottlenecks = np.flatnonzero(
            active_links & (shares <= s_link + eps)
        )
        froze_any = False
        for l_idx in bottlenecks:
            for f_idx in link_flows[l_idx]:
                if unfrozen[f_idx]:
                    freeze(f_idx, s_link)
                    froze_any = True
        assert froze_any, "progressive filling must freeze a flow per round"

    return rates
