"""Result analysis: statistics helpers and hop-count/failure studies."""

from repro.analysis.stats import cdf_points, normalize, percentile, summarize
from repro.analysis.hops import (
    average_min_hop_count,
    hop_count_distribution,
    failure_sweep,
)

__all__ = [
    "cdf_points",
    "normalize",
    "percentile",
    "summarize",
    "average_min_hop_count",
    "hop_count_distribution",
    "failure_sweep",
]
