"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method but works on plain lists
    without the array round trip.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or ordered[lo] == ordered[hi]:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


@dataclass(frozen=True)
class Summary:
    """Median / mean / tail summary of a sample (Table 2's columns)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("need at least one value")
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        minimum=min(values),
        maximum=max(values),
    )


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative_fraction) steps."""
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def normalize(
    results: Dict[str, float], baseline_key: str
) -> Dict[str, float]:
    """Divide every entry by the baseline's value (paper-style plots).

    The paper normalises throughput against the serial low-bandwidth
    network and latency statistics against serial low-bandwidth too
    (Table 2 is expressed in percent of baseline).
    """
    try:
        base = results[baseline_key]
    except KeyError:
        raise KeyError(f"baseline {baseline_key!r} not in results") from None
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {key: value / base for key, value in results.items()}
