"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) with linear interpolation.

    Matches numpy's default ("linear") method but works on plain lists
    without the array round trip.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi or ordered[lo] == ordered[hi]:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


@dataclass(frozen=True)
class Summary:
    """Median / mean / tail summary of a sample (Table 2's columns)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("need at least one value")
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        minimum=min(values),
        maximum=max(values),
    )


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative_fraction) steps."""
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


# --- confidence intervals (no scipy dependency) -----------------------

#: Acklam's rational approximation to the standard normal quantile;
#: relative error < 1.15e-9 over (0, 1).
_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02,
             -2.759285104469687e+02, 1.383577518672690e+02,
             -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02,
             -1.556989798598866e+02, 6.680131188771972e+01,
             -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01,
             -2.400758277161838e+00, -2.549732539343734e+00,
             4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01,
             2.445134137142996e+00, 3.754408661907416e+00)


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's approximation)."""
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4])
                * q + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q
                                + d[3]) * q + 1)
    if p > p_high:
        return -normal_quantile(1 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
            * r + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r
                                 + b[3]) * r + b[4]) * r + 1)


def t_quantile(p: float, df: int) -> float:
    """Student-t quantile via the Cornish-Fisher expansion around the
    normal (Abramowitz & Stegun 26.7.5); accurate to ~1e-3 for df >= 3,
    exact in the df -> inf limit.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    x = normal_quantile(p)
    g1 = (x**3 + x) / 4
    g2 = (5 * x**5 + 16 * x**3 + 3 * x) / 96
    g3 = (3 * x**7 + 19 * x**5 + 17 * x**3 - 15 * x) / 384
    g4 = (79 * x**9 + 776 * x**7 + 1482 * x**5 - 1920 * x**3
          - 945 * x) / 92160
    return x + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with its two-sided confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    count: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t confidence interval for the mean of an i.i.d. sample."""
    if len(values) < 2:
        raise ValueError("need at least two values for an interval")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_quantile((1 + confidence) / 2, n - 1) * math.sqrt(var / n)
    return MeanCI(
        mean=mean, low=mean - half, high=mean + half,
        confidence=confidence, count=n,
    )


def batch_means_ci(
    values: Sequence[float],
    n_batches: int = 10,
    confidence: float = 0.95,
) -> MeanCI:
    """Batch-means interval for an *autocorrelated* series.

    Steady-state simulation outputs (per-flow FCTs, per-window loads)
    are correlated, so the i.i.d. interval of :func:`mean_ci` is too
    narrow; grouping the series into contiguous batches and treating
    the batch means as the sample is the standard remedy (trailing
    remainder values fold into the last batch).
    """
    if n_batches < 2:
        raise ValueError(f"need >= 2 batches, got {n_batches}")
    if len(values) < 2 * n_batches:
        raise ValueError(
            f"need >= {2 * n_batches} values for {n_batches} batches, "
            f"got {len(values)}"
        )
    size = len(values) // n_batches
    means = []
    for b in range(n_batches):
        lo = b * size
        hi = (b + 1) * size if b < n_batches - 1 else len(values)
        batch = values[lo:hi]
        means.append(sum(batch) / len(batch))
    return mean_ci(means, confidence=confidence)


def normalize(
    results: Dict[str, float], baseline_key: str
) -> Dict[str, float]:
    """Divide every entry by the baseline's value (paper-style plots).

    The paper normalises throughput against the serial low-bandwidth
    network and latency statistics against serial low-bandwidth too
    (Table 2 is expressed in percent of baseline).
    """
    try:
        base = results[baseline_key]
    except KeyError:
        raise KeyError(f"baseline {baseline_key!r} not in results") from None
    if base == 0:
        raise ZeroDivisionError("baseline value is zero")
    return {key: value / base for key, value in results.items()}
