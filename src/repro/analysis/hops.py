"""Hop-count analysis and the fault-tolerance study (Figures 10 & 14).

The paper's latency results are driven by *switch hop counts*: fewer chips
per path mean less propagation (1 us per ~200 m hop) and less queueing.
For parallel networks the host picks its plane, so the effective hop count
of a pair is the minimum over planes.

:func:`failure_sweep` reproduces Figure 14: fail a growing fraction of
switch-to-switch links uniformly at random and track the average hop count
of all-pairs best paths for serial, parallel homogeneous, and parallel
heterogeneous networks.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.pnet import PNet
from repro.routing.shortest import bfs_distances
from repro.topology.graph import TOR, Topology


def _tor_distance_matrix(plane: Topology) -> Dict[str, Dict[str, int]]:
    """All-pairs link distances among ToR switches of one plane."""
    tors = plane.nodes_of_kind(TOR)
    return {tor: bfs_distances(plane, tor) for tor in tors}


def hop_count_distribution(pnet: PNet) -> List[int]:
    """Best (min over planes) switch hop count for every host pair.

    Computed at rack granularity: two hosts under ToR ``a`` and ToR ``b``
    cross ``dist(a, b) + 1`` switches (their path enters a, traverses to
    b, with every intermediate node a switch).  Intra-rack pairs cross
    exactly one switch.  Disconnected pairs are skipped.
    """
    plane0 = pnet.plane(0)
    hosts = pnet.hosts
    tor_of = {h: plane0.tor_of(h) for h in hosts}
    dists = [_tor_distance_matrix(plane) for plane in pnet.planes]

    counts: List[int] = []
    for i, src in enumerate(hosts):
        for dst in hosts[i + 1:]:
            ts, td = tor_of[src], tor_of[dst]
            if ts == td:
                counts.append(1)
                continue
            best: Optional[int] = None
            for plane_dist in dists:
                d = plane_dist[ts].get(td)
                if d is not None and (best is None or d < best):
                    best = d
            if best is not None:
                counts.append(best + 1)
    return counts


def average_min_hop_count(pnet: PNet) -> float:
    """Mean of :func:`hop_count_distribution` (Figure 14's y-axis)."""
    counts = hop_count_distribution(pnet)
    if not counts:
        raise ValueError("no connected host pairs")
    return sum(counts) / len(counts)


def failure_sweep(
    make_pnet: Callable[[], PNet],
    fractions: Sequence[float],
    seeds: Sequence[int] = (0, 1, 2),
) -> Dict[float, List[float]]:
    """Average best-path hop count under growing random link failures.

    For each failure fraction and seed, a *fresh* network is built (so
    each repetition also re-instantiates random topologies, as the paper
    does), the fraction of switch-to-switch links is failed uniformly at
    random across all planes, and the all-pairs average hop count is
    measured.

    Returns:
        fraction -> list of per-seed averages.
    """
    results: Dict[float, List[float]] = {f: [] for f in fractions}
    for fraction in fractions:
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"failure fraction must be in [0,1), got {fraction}")
        for seed in seeds:
            pnet = make_pnet()
            rng = random.Random(f"failures-{seed}-{fraction}")
            for plane in pnet.planes:
                plane.fail_random_links(fraction, rng, switch_only=True)
            pnet.invalidate_routing()
            results[fraction].append(average_min_hop_count(pnet))
    return results
