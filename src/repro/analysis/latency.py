"""Unloaded latency accounting (paper sections 2, 3.3 and 5.2.1).

The paper's latency arithmetic, reproduced exactly:

* each switch hop adds store-and-forward **serialisation** delay
  (``bytes * 8 / rate`` -- 120 ns for an MTU at 100G, 30 ns at 400G) plus
  **propagation** (~1 us per ~200 m hop in the core);
* a serial high-bandwidth network only shaves serialisation (90 ns/hop at
  400G vs 100G) -- "11x" less than the 1 us propagation term -- whereas
  fewer hops save both, which is why the parallel architecture's 3 chip
  hops beat the chassis design's 7 even at lower link speed.

:func:`architecture_latency` turns a Table-1 :class:`ComponentCount` into
an end-to-end unloaded latency; :func:`serialization_advantage` is the
paper's 11x computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.cost import ComponentCount
from repro.units import (
    DEFAULT_HOP_PROPAGATION,
    DEFAULT_LINK_RATE,
    MTU,
    transmit_time,
)


@dataclass(frozen=True)
class LatencyBreakdown:
    """Unloaded one-way latency of a worst-case path."""

    hops: int
    serialization: float
    propagation: float

    @property
    def total(self) -> float:
        return self.serialization + self.propagation


def path_latency(
    hops: int,
    link_rate: float = DEFAULT_LINK_RATE,
    payload: int = MTU,
    propagation_per_hop: float = DEFAULT_HOP_PROPAGATION,
) -> LatencyBreakdown:
    """Latency of a packet crossing ``hops`` store-and-forward switches.

    The packet is serialised once onto the first link and once per switch
    (hops + 1 serialisations), and propagates over hops + 1 links.
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    links = hops + 1
    return LatencyBreakdown(
        hops=hops,
        serialization=links * transmit_time(payload, link_rate),
        propagation=links * propagation_per_hop,
    )


def architecture_latency(
    counts: ComponentCount,
    link_rate: float = DEFAULT_LINK_RATE,
    payload: int = MTU,
    propagation_per_hop: float = DEFAULT_HOP_PROPAGATION,
) -> LatencyBreakdown:
    """Worst-case unloaded latency for a Table-1 architecture row."""
    return path_latency(
        counts.hops,
        link_rate=link_rate,
        payload=payload,
        propagation_per_hop=propagation_per_hop,
    )


def serialization_advantage(
    slow_rate: float = DEFAULT_LINK_RATE,
    fast_rate: float = 4 * DEFAULT_LINK_RATE,
    payload: int = MTU,
    propagation_per_hop: float = DEFAULT_HOP_PROPAGATION,
) -> float:
    """Propagation delay over the per-hop serialisation saving.

    The paper computes 1 us / (120 ns - 30 ns) = ~11x for 100G vs 400G:
    the higher the ratio, the less a faster serial network can buy, and
    the more shorter paths (heterogeneous P-Nets) matter.
    """
    saving = transmit_time(payload, slow_rate) - transmit_time(
        payload, fast_rate
    )
    if saving <= 0:
        raise ValueError("fast_rate must exceed slow_rate")
    return propagation_per_hop / saving
