"""Packets and source routes.

Packets are source-routed the way htsim routes them: each carries the
list of network elements (queues, pipes, finally a protocol sink) it will
visit, plus the index of its current position.  Elements call
:meth:`Packet.forward` to hand the packet to the next element.
"""

from __future__ import annotations

from typing import Any, List, Optional

#: TCP/IP header bytes; ACK-only packets are exactly this big.
HEADER_BYTES = 40


class Packet:
    """One data segment or ACK.

    Attributes:
        flow: opaque owner (the TCP/MPTCP source), used by sinks.
        size: wire size in bytes (payload + headers).
        seq: first payload byte's sequence number (data packets).
        payload: payload bytes carried (0 for pure ACKs).
        ack: cumulative ACK sequence (ACK packets).
        is_ack: ACK flag.
        route: element list ending at the destination sink.
        hop: index into ``route`` of the element currently holding it.
        sent_time: when the source (re)transmitted it, for RTT sampling.
        retransmit: set on retransmissions (their RTT samples are
            discarded, Karn's algorithm).
    """

    __slots__ = (
        "flow", "size", "seq", "payload", "ack", "is_ack",
        "route", "hop", "sent_time", "retransmit", "ecn_ce", "ece",
    )

    def __init__(
        self,
        flow: Any,
        route: List[Any],
        payload: int = 0,
        seq: int = 0,
        ack: int = 0,
        is_ack: bool = False,
        sent_time: float = 0.0,
        retransmit: bool = False,
        ece: bool = False,
    ):
        self.flow = flow
        self.route = route
        self.payload = payload
        self.size = payload + HEADER_BYTES
        self.seq = seq
        self.ack = ack
        self.is_ack = is_ack
        self.hop = -1
        self.sent_time = sent_time
        self.retransmit = retransmit
        #: Congestion Experienced: set by an ECN queue over threshold.
        self.ecn_ce = False
        #: ECN Echo: set on ACKs by a DCTCP receiver echoing CE marks.
        self.ece = ece

    def forward(self) -> None:
        """Hand the packet to the next element on its route."""
        self.hop += 1
        self.route[self.hop].receive(self)

    def __repr__(self) -> str:
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"Packet({kind}, seq={self.seq}, ack={self.ack}, "
            f"payload={self.payload}, hop={self.hop}/{len(self.route)})"
        )
