"""Queues and pipes: the two halves of a directed link.

A directed link ``u -> v`` is a drop-tail :class:`Queue` (serialisation at
the link rate, bounded buffer) feeding a :class:`Pipe` (fixed propagation
delay).  This matches htsim's element model and the paper's switch
abstraction: output-queued switches with per-port FIFO buffers.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Deque, Optional  # noqa: F401 (Optional used in sig)

from repro.sim.events import EventLoop
from repro.sim.packet import Packet


class Pipe:
    """Fixed propagation delay; never drops or reorders."""

    __slots__ = ("loop", "delay", "name")

    def __init__(self, loop: EventLoop, delay: float, name: str = ""):
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.loop = loop
        self.delay = delay
        self.name = name

    def receive(self, packet: Packet) -> None:
        self.loop.schedule(self.delay, packet.forward)


class Queue:
    """Drop-tail FIFO output queue serialising at the link rate.

    Args:
        loop: the event loop.
        rate: link rate, bits/second.
        max_packets: buffer capacity in packets *excluding* the one in
            service (htsim-style; the paper's switches default to 100).
    """

    __slots__ = (
        "loop", "rate", "max_packets", "name", "ecn_threshold",
        "_buffer", "_busy", "drops", "packets_forwarded", "bytes_forwarded",
        "ecn_marks", "down", "_trace", "plane",
    )

    def __init__(
        self,
        loop: EventLoop,
        rate: float,
        max_packets: int = 100,
        name: str = "",
        ecn_threshold: Optional[int] = None,
        tracer=None,
        plane: Optional[int] = None,
    ):
        """See class docstring.

        Args:
            ecn_threshold: mark packets with Congestion Experienced when
                the instantaneous queue depth is at or above this many
                packets on arrival (DCTCP's step marking at K).  None
                disables marking.
            tracer: optional :class:`repro.obs.Tracer`; drops and ECN
                marks are always traced, per-packet depth samples only
                when the tracer is ``verbose``.
            plane: dataplane index stamped on trace events.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if max_packets < 1:
            raise ValueError(f"max_packets must be >= 1, got {max_packets}")
        if ecn_threshold is not None and ecn_threshold < 1:
            raise ValueError(
                f"ecn_threshold must be >= 1, got {ecn_threshold}"
            )
        self.loop = loop
        self.rate = rate
        self.max_packets = max_packets
        self.name = name
        self.ecn_threshold = ecn_threshold
        self._buffer: Deque[Packet] = deque()
        self._busy = False
        self.drops = 0
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        self.ecn_marks = 0
        #: Mid-run failure flag: a down link black-holes everything
        #: (buffered packets are lost too, like a cut fiber).
        self.down = False
        self._trace = tracer
        self.plane = plane

    @property
    def depth(self) -> int:
        """Packets buffered (excluding the one being serialised)."""
        return len(self._buffer)

    def fail(self) -> None:
        """Cut the link: drop the buffer and every future arrival."""
        self.down = True
        self.drops += len(self._buffer)
        if self._trace is not None and self._buffer:
            self._trace.emit(
                "queue.fail", self.loop.now, queue=self.name,
                plane=self.plane, lost=len(self._buffer),
            )
        self._buffer.clear()

    def restore(self) -> None:
        self.down = False

    def receive(self, packet: Packet) -> None:
        if self.down:
            self.drops += 1
            if self._trace is not None:
                self._trace.emit(
                    "queue.drop", self.loop.now, queue=self.name,
                    plane=self.plane, reason="down", depth=len(self._buffer),
                )
            return
        if (
            self.ecn_threshold is not None
            and not packet.is_ack
            and len(self._buffer) + (1 if self._busy else 0)
                >= self.ecn_threshold
        ):
            packet.ecn_ce = True
            self.ecn_marks += 1
            if self._trace is not None:
                self._trace.emit(
                    "queue.ecn", self.loop.now, queue=self.name,
                    plane=self.plane, depth=len(self._buffer),
                )
        if not self._busy:
            self._busy = True
            self._serve(packet)
        elif len(self._buffer) < self.max_packets:
            self._buffer.append(packet)
            if self._trace is not None and self._trace.verbose:
                self._trace.emit(
                    "queue.depth", self.loop.now, queue=self.name,
                    plane=self.plane, depth=len(self._buffer),
                )
        else:
            self.drops += 1
            if self._trace is not None:
                self._trace.emit(
                    "queue.drop", self.loop.now, queue=self.name,
                    plane=self.plane, reason="overflow",
                    depth=len(self._buffer),
                )

    def _serve(self, packet: Packet) -> None:
        service_time = packet.size * 8 / self.rate
        # partial, not a lambda: the pending event must pickle for
        # checkpointing (repro.ckpt snapshots the live event heap).
        self.loop.schedule(
            service_time, functools.partial(self._done, packet)
        )

    def _done(self, packet: Packet) -> None:
        self.packets_forwarded += 1
        self.bytes_forwarded += packet.size
        packet.forward()
        if self._buffer:
            self._serve(self._buffer.popleft())
        else:
            self._busy = False
