"""TCP NewReno source and sink.

Implements the congestion-control behaviour the paper's experiments rest
on: slow start from a 10-segment initial window, AIMD congestion
avoidance, triple-duplicate-ACK fast retransmit with NewReno partial-ACK
recovery, and go-back-N retransmission timeouts with a 10 ms minimum RTO
(the DCTCP-recommended datacenter tuning the paper adopts).

Sources are source-routed: the caller provides the forward element route
(ending at the :class:`TcpSink`) and the sink's reverse route (ending
back at the source).  Congestion-avoidance growth is a hook
(:meth:`TcpSource._ca_increase`) so MPTCP can substitute its coupled
increase.

A source can serve a fixed ``size`` or draw bytes from an external
``scheduler`` (MPTCP's shared send buffer); see :mod:`repro.sim.mptcp`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from repro.sim.events import Event, EventLoop
from repro.sim.packet import Packet
from repro.units import DEFAULT_MIN_RTO, MSS

#: Upper bound on exponential RTO backoff.
MAX_RTO = 1.0


class TcpSource:
    """One TCP NewReno sender.

    Args:
        loop: event loop.
        size: bytes to send; None when a ``scheduler`` supplies data.
        scheduler: object with ``request(nbytes) -> granted`` and
            ``remaining`` (MPTCP shared buffer); mutually exclusive
            semantics with a fixed ``size``.
        mss: maximum segment size (payload bytes).
        initial_cwnd: initial window in segments.
        min_rto: minimum retransmission timeout.
        on_complete: called once when every byte is cumulatively ACKed.
        on_ack: progress hook (used by MPTCP for completion/coupling).
    """

    def __init__(
        self,
        loop: EventLoop,
        size: Optional[int] = None,
        scheduler=None,
        mss: int = MSS,
        initial_cwnd: int = 10,
        min_rto: float = DEFAULT_MIN_RTO,
        on_complete: Optional[Callable[["TcpSource"], None]] = None,
        on_ack: Optional[Callable[["TcpSource"], None]] = None,
        name: str = "tcp",
        tracer=None,
    ):
        if (size is None) == (scheduler is None):
            raise ValueError("exactly one of size/scheduler must be given")
        if size is not None and size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.loop = loop
        self.scheduler = scheduler
        #: Optional repro.obs Tracer; congestion events (RTO, fast
        #: retransmit) are traced with the current cwnd/ssthresh/RTO so
        #: operators can reconstruct per-subflow congestion behaviour.
        self.tracer = tracer
        self.assigned = size if size is not None else 0
        self.mss = mss
        self.min_rto = min_rto
        self.on_complete = on_complete
        self.on_ack = on_ack
        self.name = name

        self.route_out: List = []  # set by the network builder

        # Sender state (bytes).
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(initial_cwnd * mss)
        self.ssthresh = math.inf
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_seq = 0

        # RTT estimation / RTO.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = min_rto
        self._rtx_event: Optional[Event] = None
        self._backoff = 1

        # Bookkeeping.
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.retransmits = 0
        self.packets_sent = 0
        self._completed = False

    # --- public API --------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (route must be wired first)."""
        if not self.route_out:
            raise RuntimeError("route_out not wired")
        self.start_time = self.loop.now
        if self._total_size == 0 and self._no_more_data:
            self._finish()
            return
        self._try_send()

    @property
    def completed(self) -> bool:
        return self._completed

    def abort(self) -> None:
        """Stop transmitting without completing (e.g. app-level failover).

        Cancels the retransmission timer and ignores all future ACKs; no
        completion callback fires.  The application can then re-launch
        the remaining bytes as a new flow on a different path.
        """
        self._completed = True
        self._cancel_timer()

    @property
    def flightsize(self) -> int:
        return self.snd_nxt - self.snd_una

    # --- data supply ----------------------------------------------------------

    @property
    def _total_size(self) -> int:
        return self.assigned

    @property
    def _no_more_data(self) -> bool:
        return self.scheduler is None or self.scheduler.remaining == 0

    def _available(self) -> int:
        """Bytes ready to send at ``snd_nxt``, pulling from the scheduler."""
        avail = self.assigned - self.snd_nxt
        if avail <= 0 and self.scheduler is not None:
            grant = self.scheduler.request(self.mss)
            self.assigned += grant
            avail = self.assigned - self.snd_nxt
        return max(avail, 0)

    # --- transmission -----------------------------------------------------------

    def _try_send(self) -> None:
        while self.flightsize < self.cwnd:
            avail = self._available()
            if avail <= 0:
                break
            payload = min(self.mss, avail)
            self._transmit(self.snd_nxt, payload, retransmit=False)
            self.snd_nxt += payload

    def _transmit(self, seq: int, payload: int, retransmit: bool) -> None:
        packet = Packet(
            flow=self,
            route=self.route_out,
            payload=payload,
            seq=seq,
            sent_time=self.loop.now,
            retransmit=retransmit,
        )
        self.packets_sent += 1
        if retransmit:
            self.retransmits += 1
        if self._rtx_event is None:
            self._arm_timer()
        packet.forward()

    def _retransmit_head(self) -> None:
        payload = min(self.mss, self.assigned - self.snd_una)
        if payload > 0:
            self._transmit(self.snd_una, payload, retransmit=True)

    # --- timer ---------------------------------------------------------------------

    def _arm_timer(self) -> None:
        delay = min(self.rto * self._backoff, MAX_RTO)
        self._rtx_event = self.loop.schedule(delay, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._rtx_event is not None:
            # Through the loop, not Event.cancel: per-ACK timer churn is
            # the dominant source of dead heap entries, and the loop
            # compacts them once they outnumber live events.
            self.loop.cancel(self._rtx_event)
            self._rtx_event = None

    def _on_timeout(self) -> None:
        self._rtx_event = None
        if self._completed or self.flightsize == 0:
            return
        if self.tracer is not None:
            self.tracer.emit(
                "tcp.rto", self.loop.now, flow=self.name, cwnd=self.cwnd,
                rto=self.rto, backoff=self._backoff,
                flightsize=self.flightsize,
            )
        # Go-back-N: shrink to one segment and restart from snd_una.
        self.ssthresh = max(self.flightsize / 2.0, 2.0 * self.mss)
        self.cwnd = float(self.mss)
        self.in_recovery = False
        self.dup_acks = 0
        self._backoff = min(self._backoff * 2, 64)
        payload = min(self.mss, self.assigned - self.snd_una)
        self.snd_nxt = self.snd_una + payload
        self._retransmit_head()
        if self._rtx_event is None:
            self._arm_timer()

    # --- RTT estimation ----------------------------------------------------------------

    def _sample_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(self.srtt + 4 * self.rttvar, self.min_rto)

    # --- congestion control hooks ---------------------------------------------------------

    def _ca_increase(self, newly_acked: int) -> None:
        """Congestion-avoidance growth (~1 MSS per RTT for plain TCP)."""
        self.cwnd += self.mss * newly_acked / self.cwnd

    def _slow_start_increase(self, newly_acked: int) -> None:
        self.cwnd += newly_acked

    # --- ACK processing --------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry point for ACKs arriving over the reverse route."""
        if not packet.is_ack:
            raise ValueError("TcpSource received a non-ACK packet")
        self._handle_ack(packet)

    def _handle_ack(self, packet: Packet) -> None:
        if self._completed:
            return
        ack = packet.ack
        if ack > self.snd_una:
            newly = ack - self.snd_una
            self.snd_una = ack
            self.dup_acks = 0
            self._backoff = 1
            if not packet.retransmit:
                self._sample_rtt(self.loop.now - packet.sent_time)
            if self.in_recovery:
                if ack >= self.recover_seq:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # Partial ACK: retransmit the next hole, deflate.
                    self._retransmit_head()
                    self.cwnd = max(
                        self.cwnd - newly + self.mss, float(self.mss)
                    )
            elif self.cwnd < self.ssthresh:
                self._slow_start_increase(newly)
            else:
                self._ca_increase(newly)

            self._cancel_timer()
            if self.flightsize > 0:
                self._arm_timer()

            if self.on_ack is not None:
                self.on_ack(self)
            if self.snd_una >= self.assigned and self._no_more_data:
                # All assigned bytes ACKed; if the scheduler has nothing
                # left, this source is done.
                if self.scheduler is None:
                    self._finish()
                return
            self._try_send()
        elif ack == self.snd_una and self.flightsize > 0:
            # Duplicate ACK (stale ACKs below snd_una are ignored).
            self.dup_acks += 1
            if self.dup_acks == 3 and not self.in_recovery:
                if self.tracer is not None:
                    self.tracer.emit(
                        "tcp.fast_rtx", self.loop.now, flow=self.name,
                        cwnd=self.cwnd, flightsize=self.flightsize,
                    )
                self.ssthresh = max(
                    self.flightsize / 2.0, 2.0 * self.mss
                )
                self.in_recovery = True
                self.recover_seq = self.snd_nxt
                self._retransmit_head()
                self.cwnd = self.ssthresh + 3.0 * self.mss
            elif self.in_recovery:
                self.cwnd += self.mss  # window inflation
                self._try_send()

    def _finish(self) -> None:
        if self._completed:
            return
        self._completed = True
        self.finish_time = self.loop.now
        self._cancel_timer()
        if self.on_complete is not None:
            self.on_complete(self)


class TcpSink:
    """Receiver: cumulative ACKs, out-of-order buffering."""

    def __init__(self, loop: EventLoop, name: str = "sink"):
        self.loop = loop
        self.name = name
        self.route_back: List = []  # set by the network builder
        self.rcv_nxt = 0
        self._ooo: dict = {}  # seq -> payload
        self.packets_received = 0

    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            raise ValueError("TcpSink received an ACK")
        self.packets_received += 1
        seq, payload = packet.seq, packet.payload
        if seq == self.rcv_nxt:
            self.rcv_nxt += payload
            while self.rcv_nxt in self._ooo:
                self.rcv_nxt += self._ooo.pop(self.rcv_nxt)
        elif seq > self.rcv_nxt:
            self._ooo[seq] = payload
        # else: duplicate of already-delivered data; just re-ACK.
        ack = Packet(
            flow=packet.flow,
            route=self.route_back,
            payload=0,
            ack=self.rcv_nxt,
            is_ack=True,
            sent_time=packet.sent_time,
            retransmit=packet.retransmit,
            # ECN echo: a DCTCP receiver reflects CE marks per packet.
            ece=packet.ecn_ce,
        )
        ack.forward()
