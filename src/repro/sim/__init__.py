"""Packet-level discrete-event simulator (the repo's htsim [23] analog).

Components mirror htsim's architecture:

* :mod:`repro.sim.events` -- the event loop.
* :mod:`repro.sim.packet` -- data/ACK packets with source routes.
* :mod:`repro.sim.link` -- drop-tail output queues and propagation pipes.
* :mod:`repro.sim.tcp` -- TCP NewReno sources/sinks (slow start, fast
  retransmit/recovery, RTO with the 10 ms datacenter minimum).
* :mod:`repro.sim.mptcp` -- MPTCP with LIA-coupled congestion control
  over subflows pinned to P-Net paths.
* :mod:`repro.sim.network` -- assembles queues/pipes from topologies and
  launches flows.
* :mod:`repro.sim.rpc` -- closed-loop request/response application.

Used for the latency-sensitive experiments (Figures 9-11, Table 2) where
queueing, slow start, and retransmissions matter packet by packet.

Constructing the engine through this package
(``repro.sim.PacketNetwork``) is **deprecated** for workload code: use
``repro.api.build_network(planes, kind="packet")`` so trials stay
engine-agnostic (hybrid fidelity, registry dispatch, uniform
checkpointing).  Internal wiring that genuinely needs the class imports
it from :mod:`repro.sim.network`, which never warns.
"""

import warnings

from repro.sim.events import EventLoop
from repro.sim.rpc import RpcClient

__all__ = ["EventLoop", "PacketNetwork", "RpcClient"]


def __getattr__(name):
    if name == "PacketNetwork":
        warnings.warn(
            "constructing engines via repro.sim.PacketNetwork is "
            "deprecated; use repro.api.build_network(planes, "
            "kind='packet') (internal wiring may import "
            "repro.sim.network.PacketNetwork directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.sim.network import PacketNetwork

        return PacketNetwork
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
