"""Packet-level discrete-event simulator (the repo's htsim [23] analog).

Components mirror htsim's architecture:

* :mod:`repro.sim.events` -- the event loop.
* :mod:`repro.sim.packet` -- data/ACK packets with source routes.
* :mod:`repro.sim.link` -- drop-tail output queues and propagation pipes.
* :mod:`repro.sim.tcp` -- TCP NewReno sources/sinks (slow start, fast
  retransmit/recovery, RTO with the 10 ms datacenter minimum).
* :mod:`repro.sim.mptcp` -- MPTCP with LIA-coupled congestion control
  over subflows pinned to P-Net paths.
* :mod:`repro.sim.network` -- assembles queues/pipes from topologies and
  launches flows.
* :mod:`repro.sim.rpc` -- closed-loop request/response application.

Used for the latency-sensitive experiments (Figures 9-11, Table 2) where
queueing, slow start, and retransmissions matter packet by packet.
"""

from repro.sim.events import EventLoop
from repro.sim.network import PacketNetwork
from repro.sim.rpc import RpcClient

__all__ = ["EventLoop", "PacketNetwork", "RpcClient"]
