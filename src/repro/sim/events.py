"""Binary-heap event loop for the packet simulator."""

from __future__ import annotations

import heapq
import math
import time
from typing import Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; keep the handle to :meth:`cancel` it."""

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: float, fn: Callable[[], None]):
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Lazily cancel: the loop skips cancelled events when popped."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    Ties are broken by insertion order, so runs are reproducible given
    the same schedule of calls.

    Args:
        obs: optional :class:`repro.obs.Registry`; when enabled, each
            :meth:`run` records the event count, wall-clock duration,
            and heap high-water mark.  The per-event hot loop is never
            instrumented -- telemetry costs one check per ``run`` call,
            not per event.
    """

    def __init__(self, obs=None):
        self.now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        # Plain int (not itertools.count): checkpointing pickles the
        # whole loop, and the tie-break sequence must survive exactly.
        self._seq = 0
        self.events_processed = 0
        #: Deepest the heap has ever been (cancelled events included).
        self.max_heap_depth = 0
        self._obs = obs

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` seconds; returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time} < {self.now})"
            )
        event = Event(time, fn)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        if len(self._heap) > self.max_heap_depth:
            self.max_heap_depth = len(self._heap)
        return event

    def run(
        self,
        until: float = math.inf,
        max_events: int = 500_000_000,
    ) -> None:
        """Process events in time order until the queue drains or ``until``."""
        obs = self._obs
        timing = obs is not None and obs.enabled
        if timing:
            t0 = time.perf_counter()
        heap = self._heap
        processed = 0
        while heap:
            event_time, __, event = heap[0]
            if event_time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = event_time
            event.fn()
            processed += 1
            if processed > max_events:
                raise RuntimeError(f"exceeded {max_events} events")
        if math.isfinite(until) and until > self.now:
            self.now = until
        self.events_processed += processed
        if timing:
            obs.counter("sim.events.processed").inc(processed)
            obs.gauge("sim.events.max_heap_depth").max(self.max_heap_depth)
            obs.histogram("sim.events.run_seconds", wallclock=True).observe(
                time.perf_counter() - t0
            )

    @property
    def pending(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._heap)
