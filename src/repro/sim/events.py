"""Binary-heap event loop for the packet simulator."""

from __future__ import annotations

import heapq
import math
import time
from typing import Callable, List, Optional, Tuple


class Event:
    """A scheduled callback; keep the handle to :meth:`cancel` it."""

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: float, fn: Callable[[], None]):
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Lazily cancel: the loop skips cancelled events when popped."""
        self.cancelled = True


class EventLoop:
    """Deterministic discrete-event loop.

    Ties are broken by insertion order, so runs are reproducible given
    the same schedule of calls.

    Args:
        obs: optional :class:`repro.obs.Registry`; when enabled, each
            :meth:`run` records the event count, wall-clock duration,
            and heap high-water mark.  The per-event hot loop is never
            instrumented -- telemetry costs one check per ``run`` call,
            not per event.
    """

    #: Class-level fallbacks so loops pickled before these fields
    #: existed unpickle cleanly.
    _cancelled = 0
    _interrupt_at = math.inf
    _running = False

    #: Compaction trigger: rebuild the heap once at least this many
    #: cancelled events linger *and* they are the majority.  Rebuilding
    #: is O(n) against the O(log n) per-event pop tax, so amortised it
    #: is free; pop order is a total order on (time, seq), so heapify
    #: of the surviving entries cannot change results.
    COMPACT_MIN = 512

    def __init__(self, obs=None):
        self.now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        # Plain int (not itertools.count): checkpointing pickles the
        # whole loop, and the tie-break sequence must survive exactly.
        self._seq = 0
        self.events_processed = 0
        #: Deepest the heap has ever been (cancelled events included).
        self.max_heap_depth = 0
        self._cancelled = 0
        self._interrupt_at = math.inf
        self._running = False
        self._obs = obs

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` seconds; returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past ({time} < {self.now})"
            )
        event = Event(time, fn)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        if len(self._heap) > self.max_heap_depth:
            self.max_heap_depth = len(self._heap)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel through the loop so dead heap entries get compacted.

        ``Event.cancel`` alone stays valid (the loop skips cancelled
        events on pop); this entry point additionally counts the dead
        weight and rebuilds the heap when cancelled entries dominate --
        per-ACK retransmission-timer churn otherwise leaves thousands
        of tombstones inflating every push/pop.
        """
        if event.cancelled:
            return
        event.cancelled = True
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN
            and self._cancelled * 2 >= len(self._heap)
        ):
            # In place: ``run`` holds a local alias of the heap list.
            self._heap[:] = [
                entry for entry in self._heap if not entry[2].cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def interrupt(self, at: Optional[float] = None) -> None:
        """Ask the in-progress :meth:`run` to stop early.

        The loop finishes the current callback, processes any further
        events up to and including time ``at`` (default: the current
        time), and returns without advancing past it.  A co-simulator
        calls this from inside an event callback when that callback
        created work for *another* engine behind the horizon this run
        was launched toward -- the frontier the caller computed is now
        stale, and continuing would process packet events that causally
        depend on unsimulated foreign state.  No-op unless a run is in
        progress; consumed (reset) when that run returns.
        """
        if not self._running:
            return
        at = self.now if at is None else max(at, self.now)
        if at < self._interrupt_at:
            self._interrupt_at = at

    def run(
        self,
        until: float = math.inf,
        max_events: int = 500_000_000,
    ) -> None:
        """Process events in time order until the queue drains or ``until``."""
        obs = self._obs
        timing = obs is not None and obs.enabled
        if timing:
            t0 = time.perf_counter()
        heap = self._heap
        processed = 0
        self._running = True
        try:
            while heap:
                event_time, __, event = heap[0]
                if event_time > until or event_time > self._interrupt_at:
                    break
                heapq.heappop(heap)
                if event.cancelled:
                    if self._cancelled > 0:
                        self._cancelled -= 1
                    continue
                self.now = event_time
                event.fn()
                processed += 1
                if processed > max_events:
                    raise RuntimeError(f"exceeded {max_events} events")
        finally:
            self._running = False
        end = min(until, self._interrupt_at)
        self._interrupt_at = math.inf
        if math.isfinite(end) and end > self.now:
            self.now = end
        self.events_processed += processed
        if timing:
            obs.counter("sim.events.processed").inc(processed)
            obs.gauge("sim.events.max_heap_depth").max(self.max_heap_depth)
            obs.histogram("sim.events.run_seconds", wallclock=True).observe(
                time.perf_counter() - t0
            )

    @property
    def pending(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._heap)
