"""MPTCP with LIA (Linked-Increases Algorithm) coupled congestion control.

An :class:`MptcpSource` carries one logical flow over several TCP
subflows, each pinned to one (plane, path) of the P-Net -- exactly the
paper's MPTCP + K-shortest-paths transport (section 4, [43]).

* **Data scheduling**: subflows pull MSS-sized chunks from a shared
  remaining-bytes pool whenever their window opens, so faster subflows
  naturally carry more (a simple pull scheduler; real MPTCP's
  lowest-RTT-first scheduler converges to the same steady split).
* **Coupled increase** (RFC 6356): in congestion avoidance, subflow i
  grows per ACK by ``min(alpha * acked * MSS / cwnd_total,
  acked * MSS / cwnd_i)`` with ``alpha = cwnd_total *
  max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2`` -- no more
  aggressive on any bottleneck than a single TCP.  Slow start stays
  uncoupled (standard behaviour, and the source of the paper's
  small-flow advantage on parallel planes).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.events import EventLoop
from repro.sim.tcp import TcpSource
from repro.units import DEFAULT_MIN_RTO, MSS

#: RTT guess used for coupling before a subflow has a sample.
_DEFAULT_RTT = 100e-6


class _CoupledSubflow(TcpSource):
    """A TCP subflow whose CA increase is linked to its siblings."""

    def __init__(self, parent: "MptcpSource", **kwargs):
        super().__init__(**kwargs)
        self.parent = parent

    def _ca_increase(self, newly_acked: int) -> None:
        total_cwnd, max_term, sum_term = self.parent.coupling_terms()
        if total_cwnd <= 0 or sum_term <= 0:
            return
        alpha = total_cwnd * max_term / (sum_term * sum_term)
        coupled = alpha * newly_acked * self.mss / total_cwnd
        uncoupled = newly_acked * self.mss / self.cwnd
        self.cwnd += min(coupled, uncoupled)


class MptcpSource:
    """One logical flow striped over N subflows.

    The network builder wires each subflow's ``route_out`` (and each
    sink's ``route_back``) before :meth:`start`.

    Args:
        loop: event loop.
        size: total bytes to deliver.
        n_subflows: how many subflows to create.
        on_complete: fired when every byte is ACKed on its subflow.
    """

    def __init__(
        self,
        loop: EventLoop,
        size: int,
        n_subflows: int,
        mss: int = MSS,
        initial_cwnd: int = 10,
        min_rto: float = DEFAULT_MIN_RTO,
        on_complete: Optional[Callable[["MptcpSource"], None]] = None,
        name: str = "mptcp",
        tracer=None,
    ):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        if n_subflows < 1:
            raise ValueError(f"need >= 1 subflow, got {n_subflows}")
        self.loop = loop
        self.size = size
        self.remaining = size  # unassigned bytes (the shared send buffer)
        self.on_complete = on_complete
        self.name = name
        self.tracer = tracer
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self._completed = False
        self.subflows: List[_CoupledSubflow] = [
            _CoupledSubflow(
                parent=self,
                loop=loop,
                scheduler=self,
                mss=mss,
                initial_cwnd=initial_cwnd,
                min_rto=min_rto,
                on_ack=self._on_subflow_ack,
                name=f"{name}/sub{i}",
                tracer=tracer,
            )
            for i in range(n_subflows)
        ]

    # --- scheduler interface (called by subflows) -----------------------------

    def request(self, nbytes: int) -> int:
        """Grant up to ``nbytes`` from the shared pool."""
        grant = min(nbytes, self.remaining)
        self.remaining -= grant
        return grant

    # --- coupled congestion control ------------------------------------------

    def coupling_terms(self) -> "tuple":
        """LIA coupling terms over this connection's subflows.

        Returns ``(total_cwnd, max_term, sum_term)`` where ``max_term =
        max_i cwnd_i / rtt_i^2`` and ``sum_term = sum_i cwnd_i / rtt_i``.
        Overridable: a plane-sharded run (:mod:`repro.shard`) combines
        the live local terms with epoch-stale digests of the subflows
        running on other shards.
        """
        total = 0.0
        max_term = 0.0
        sum_term = 0.0
        for sf in self.subflows:
            rtt = sf.srtt or _DEFAULT_RTT
            total += sf.cwnd
            term = sf.cwnd / rtt ** 2
            if term > max_term:
                max_term = term
            sum_term += sf.cwnd / rtt
        return total, max_term, sum_term

    # --- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.start_time = self.loop.now
        if self.size == 0:
            self._finish()
            return
        for subflow in self.subflows:
            subflow.start()

    @property
    def completed(self) -> bool:
        return self._completed

    def abort(self) -> None:
        """Abort every subflow; no completion callback fires.

        Mirrors :meth:`TcpSource.abort` for app-level (or fault-injected)
        fail-over: the caller re-launches the un-ACKed remainder as a new
        flow on live paths.
        """
        self._completed = True
        for subflow in self.subflows:
            subflow.abort()

    @property
    def acked_bytes(self) -> int:
        return sum(sf.snd_una for sf in self.subflows)

    @property
    def retransmits(self) -> int:
        return sum(sf.retransmits for sf in self.subflows)

    @property
    def packets_sent(self) -> int:
        return sum(sf.packets_sent for sf in self.subflows)

    def _on_subflow_ack(self, __subflow: TcpSource) -> None:
        if self._completed or self.remaining > 0:
            return
        if all(sf.snd_una >= sf.assigned for sf in self.subflows):
            self._finish()

    def _finish(self) -> None:
        if self._completed:
            return
        self._completed = True
        self.finish_time = self.loop.now
        if self.tracer is not None:
            # Subflow balance: how many bytes each subflow carried --
            # the per-subflow visibility MPTCP-aware monitoring needs.
            self.tracer.emit(
                "mptcp.balance", self.loop.now, flow=self.name,
                subflow_bytes=[sf.snd_una for sf in self.subflows],
            )
        if self.on_complete is not None:
            self.on_complete(self)
