"""Closed-loop request/response (RPC) application on the packet simulator.

Reproduces the paper's ping-pong setup (section 5.2.1): a client sends a
request to a server, the server replies, and the request completion time
is the wall-clock from request launch to the last response byte being
ACKed.  Each chain immediately issues the next request to its next
destination; ``concurrency`` chains per client model the concurrent-RPC
study (Figure 11).

Path selection is delegated to a callable ``(src, dst, flow_id) ->
[PlanePath]`` so any policy from :mod:`repro.core.path_selection` plugs
in; requests and responses each select their own path (the response flows
from server back to client).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.flowspec import FlowSpec
from repro.core.pnet import PlanePath
from repro.sim.network import PacketNetwork, SimFlowRecord

PathSelector = Callable[[str, str, int], List[PlanePath]]


class RpcClient:
    """One closed-loop RPC chain.

    Args:
        network: the packet network.
        select_paths: policy callable (src, dst, flow_id) -> paths.
        client: client host name.
        destinations: server per round (length = number of rounds).
        request_bytes / response_bytes: payload sizes.
        flow_id_base: offset so concurrent chains hash differently.
        on_done: fired when all rounds complete.
    """

    def __init__(
        self,
        network: PacketNetwork,
        select_paths: PathSelector,
        client: str,
        destinations: Sequence[str],
        request_bytes: int,
        response_bytes: int,
        flow_id_base: int = 0,
        on_done: Optional[Callable[["RpcClient"], None]] = None,
    ):
        if not destinations:
            raise ValueError("need at least one destination")
        self.network = network
        self.select_paths = select_paths
        self.client = client
        self.destinations = list(destinations)
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.flow_id_base = flow_id_base
        self.on_done = on_done

        self.completion_times: List[float] = []
        self.retransmits = 0
        self._round = 0
        self._round_start = 0.0

    def start(self, at: float = 0.0) -> None:
        """Begin the first round at simulated time ``at``."""
        self.network.loop.schedule_at(at, self._next_round)

    @property
    def done(self) -> bool:
        return self._round >= len(self.destinations)

    def _next_round(self) -> None:
        if self.done:
            if self.on_done is not None:
                self.on_done(self)
            return
        server = self.destinations[self._round]
        self._round_start = self.network.loop.now
        flow_id = self.flow_id_base + 2 * self._round
        paths = self.select_paths(self.client, server, flow_id)
        if not paths:
            raise RuntimeError(f"no path for RPC {self.client}->{server}")
        self.network.add_flow(spec=FlowSpec(
            src=self.client,
            dst=server,
            size=self.request_bytes,
            paths=paths,
            at=self.network.loop.now,
            on_complete=lambda rec, server=server: self._on_request_done(
                rec, server
            ),
            tag="rpc-request",
        ))

    def _on_request_done(self, record: SimFlowRecord, server: str) -> None:
        self.retransmits += record.retransmits
        flow_id = self.flow_id_base + 2 * self._round + 1
        paths = self.select_paths(server, self.client, flow_id)
        if not paths:
            raise RuntimeError(f"no path for RPC response {server}->{self.client}")
        self.network.add_flow(spec=FlowSpec(
            src=server,
            dst=self.client,
            size=self.response_bytes,
            paths=paths,
            at=self.network.loop.now,
            on_complete=self._on_response_done,
            tag="rpc-response",
        ))

    def _on_response_done(self, record: SimFlowRecord) -> None:
        self.retransmits += record.retransmits
        self.completion_times.append(
            self.network.loop.now - self._round_start
        )
        self._round += 1
        self._next_round()
