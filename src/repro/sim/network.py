"""Assemble a packet-level simulation from topologies and launch flows.

:class:`PacketNetwork` lazily instantiates a drop-tail
:class:`~repro.sim.link.Queue` + :class:`~repro.sim.link.Pipe` pair for
every directed link a flow actually crosses, wires TCP/MPTCP sources and
sinks onto source routes, and records per-flow results.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pnet import PlanePath
from repro.sim.events import EventLoop
from repro.sim.link import Pipe, Queue
from repro.sim.mptcp import MptcpSource
from repro.sim.tcp import TcpSink, TcpSource
from repro.topology.graph import Topology
from repro.units import DEFAULT_MIN_RTO, DEFAULT_QUEUE_PACKETS, MSS


@dataclass
class SimFlowRecord:
    """Result of one packet-simulated flow."""

    flow_id: int
    src: str
    dst: str
    size: int
    start: float
    finish: float
    n_subflows: int
    retransmits: int
    packets_sent: int
    tag: Optional[str] = None

    @property
    def fct(self) -> float:
        return self.finish - self.start


class PacketNetwork:
    """Packet simulation over one or more dataplanes.

    Args:
        planes: dataplanes (single element for a serial network).
        queue_packets: per-port output buffer in packets.
        mss: TCP segment payload size.
        min_rto: minimum retransmission timeout (paper: 10 ms).
    """

    def __init__(
        self,
        planes: Sequence[Topology],
        queue_packets: int = DEFAULT_QUEUE_PACKETS,
        mss: int = MSS,
        min_rto: float = DEFAULT_MIN_RTO,
        ecn_threshold: Optional[int] = None,
        loop: Optional[EventLoop] = None,
    ):
        if not planes:
            raise ValueError("need at least one plane")
        self.planes = list(planes)
        self.queue_packets = queue_packets
        self.mss = mss
        self.min_rto = min_rto
        self.ecn_threshold = ecn_threshold
        self.loop = loop if loop is not None else EventLoop()
        self._elements: Dict[Tuple[int, str, str], Tuple[Queue, Pipe]] = {}
        self._flow_ids = itertools.count()
        self.records: List[SimFlowRecord] = []

    # --- element plumbing ------------------------------------------------

    def _element_pair(self, plane_idx: int, u: str, v: str) -> Tuple[Queue, Pipe]:
        key = (plane_idx, u, v)
        pair = self._elements.get(key)
        if pair is None:
            plane = self.planes[plane_idx]
            if not plane.has_link(u, v) or plane.is_failed(u, v):
                raise ValueError(
                    f"{u}->{v} is not a live link of plane {plane_idx}"
                )
            link = plane.link(u, v)
            queue = Queue(
                self.loop,
                rate=link.capacity,
                max_packets=self.queue_packets,
                name=f"p{plane_idx}:{u}->{v}",
                ecn_threshold=self.ecn_threshold,
            )
            pipe = Pipe(self.loop, link.propagation, name=f"p{plane_idx}:{u}->{v}")
            pair = (queue, pipe)
            self._elements[key] = pair
        return pair

    def _route_elements(self, plane_idx: int, path: Sequence[str]) -> List:
        if len(path) < 2:
            raise ValueError("path must traverse at least one link")
        elements: List = []
        for u, v in zip(path, path[1:]):
            queue, pipe = self._element_pair(plane_idx, u, v)
            elements.append(queue)
            elements.append(pipe)
        return elements

    # --- flow launch ----------------------------------------------------------

    def add_flow(
        self,
        src: str,
        dst: str,
        size: int,
        paths: Sequence[PlanePath],
        at: float = 0.0,
        on_complete: Optional[Callable[[SimFlowRecord], None]] = None,
        tag: Optional[str] = None,
        transport: str = "tcp",
    ):
        """Launch a flow at time ``at`` over the given subflow paths.

        One path -> plain TCP (or DCTCP with ``transport="dctcp"``, which
        requires the network's queues to have an ``ecn_threshold``);
        several paths -> MPTCP with one subflow each.
        Returns the source object (a TcpSource or MptcpSource).
        """
        if transport not in ("tcp", "dctcp"):
            raise ValueError(f"unknown transport {transport!r}")
        if transport == "dctcp" and len(paths) > 1:
            raise ValueError("DCTCP is single-path; use one path")
        if not paths:
            raise ValueError("need at least one path")
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        for plane_idx, path in paths:
            if path[0] != src or path[-1] != dst:
                raise ValueError(f"path {path} does not connect {src}->{dst}")
        flow_id = next(self._flow_ids)

        def finish(source) -> None:
            record = SimFlowRecord(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size=size,
                start=source.start_time,
                finish=source.finish_time,
                n_subflows=len(paths),
                retransmits=source.retransmits,
                packets_sent=source.packets_sent,
                tag=tag,
            )
            self.records.append(record)
            if on_complete is not None:
                on_complete(record)

        if len(paths) == 1:
            from repro.sim.dctcp import DctcpSource

            source_cls = DctcpSource if transport == "dctcp" else TcpSource
            source = source_cls(
                self.loop,
                size=size,
                mss=self.mss,
                min_rto=self.min_rto,
                on_complete=finish,
                name=f"{transport}-{flow_id}",
            )
            self._wire(source, paths[0])
        else:
            source = MptcpSource(
                self.loop,
                size=size,
                n_subflows=len(paths),
                mss=self.mss,
                min_rto=self.min_rto,
                on_complete=finish,
                name=f"mptcp-{flow_id}",
            )
            for subflow, plane_path in zip(source.subflows, paths):
                self._wire(subflow, plane_path)

        self.loop.schedule_at(at, source.start)
        return source

    def _wire(self, tcp_source: TcpSource, plane_path: PlanePath) -> None:
        plane_idx, path = plane_path
        sink = TcpSink(self.loop, name=f"{tcp_source.name}-sink")
        forward = self._route_elements(plane_idx, path)
        backward = self._route_elements(plane_idx, list(reversed(path)))
        tcp_source.route_out = forward + [sink]
        sink.route_back = backward + [tcp_source]

    # --- mid-run failures -----------------------------------------------------------

    def fail_link(self, plane_idx: int, u: str, v: str) -> None:
        """Cut a link during the simulation.

        Both directions black-hole immediately (in-queue packets are
        lost); the topology is marked failed so path selection performed
        after :meth:`~repro.core.pnet.PNet.invalidate_routing` avoids it.
        Flows already pinned to the link stall into RTO -- exactly what a
        real cut does to a source-routed flow.
        """
        self.planes[plane_idx].fail_link(u, v)
        for a, b in ((u, v), (v, u)):
            pair = self._elements.get((plane_idx, a, b))
            if pair is not None:
                pair[0].fail()

    def restore_link(self, plane_idx: int, u: str, v: str) -> None:
        self.planes[plane_idx].restore_link(u, v)
        for a, b in ((u, v), (v, u)):
            pair = self._elements.get((plane_idx, a, b))
            if pair is not None:
                pair[0].restore()

    # --- execution -----------------------------------------------------------------

    def run(self, until: float = math.inf, max_events: int = 500_000_000) -> None:
        self.loop.run(until=until, max_events=max_events)

    # --- statistics -------------------------------------------------------------------

    @property
    def total_drops(self) -> int:
        return sum(q.drops for q, __ in self._elements.values())

    @property
    def total_ecn_marks(self) -> int:
        return sum(q.ecn_marks for q, __ in self._elements.values())

    @property
    def total_retransmits(self) -> int:
        return sum(r.retransmits for r in self.records)

    def queue_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-queue (packets forwarded, drops), keyed by queue name."""
        return {
            q.name: (q.packets_forwarded, q.drops)
            for q, __ in self._elements.values()
        }
