"""Assemble a packet-level simulation from topologies and launch flows.

:class:`PacketNetwork` lazily instantiates a drop-tail
:class:`~repro.sim.link.Queue` + :class:`~repro.sim.link.Pipe` pair for
every directed link a flow actually crosses, wires TCP/MPTCP sources and
sinks onto source routes, and records per-flow results.

Telemetry: pass a :class:`repro.obs.Registry` as ``obs`` (or install a
process default via :func:`repro.obs.set_registry`) and the network
publishes per-plane flow counters at completion time and per-plane
queue counters after every :meth:`run`; with a tracer attached, queue
drops/ECN marks, TCP congestion events, and flow completions are traced
with simulated timestamps.  With the default disabled registry the
simulation's hot paths are untouched.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.flowspec import FlowSpec, warn_positional_add_flow
from repro.core.pnet import PlanePath
from repro.obs import get_registry
from repro.sim.events import EventLoop
from repro.sim.link import Pipe, Queue
from repro.sim.mptcp import MptcpSource
from repro.sim.tcp import TcpSink, TcpSource
from repro.topology.graph import Topology
from repro.units import DEFAULT_MIN_RTO, DEFAULT_QUEUE_PACKETS, MSS

_UNSET = object()


@dataclass
class SimFlowRecord:
    """Result of one packet-simulated flow."""

    flow_id: int
    src: str
    dst: str
    size: int
    start: float
    finish: float
    n_subflows: int
    retransmits: int
    packets_sent: int
    tag: Optional[str] = None
    #: Planes the flow's subflows used, in subflow order (one entry per
    #: subflow, so per-plane accounting can split bytes exactly).
    planes: Tuple[int, ...] = field(default=())

    @property
    def fct(self) -> float:
        return self.finish - self.start


class PacketNetwork:
    """Packet simulation over one or more dataplanes.

    Args:
        planes: dataplanes (single element for a serial network).
        queue_packets: per-port output buffer in packets.
        mss: TCP segment payload size.
        min_rto: minimum retransmission timeout (paper: 10 ms).
        obs: telemetry registry; defaults to the process-wide registry
            from :func:`repro.obs.get_registry` (a no-op unless the
            caller attached one).
    """

    def __init__(
        self,
        planes: Sequence[Topology],
        queue_packets: int = DEFAULT_QUEUE_PACKETS,
        mss: int = MSS,
        min_rto: float = DEFAULT_MIN_RTO,
        ecn_threshold: Optional[int] = None,
        loop: Optional[EventLoop] = None,
        obs=None,
    ):
        if not planes:
            raise ValueError("need at least one plane")
        self.planes = list(planes)
        self.queue_packets = queue_packets
        self.mss = mss
        self.min_rto = min_rto
        self.ecn_threshold = ecn_threshold
        self.obs = obs if obs is not None else get_registry()
        self._tracer = self.obs.tracer if self.obs.enabled else None
        self.loop = loop if loop is not None else EventLoop(
            obs=self.obs if self.obs.enabled else None
        )
        self._elements: Dict[Tuple[int, str, str], Tuple[Queue, Pipe]] = {}
        # Plain int (not itertools.count) so the network pickles for
        # checkpointing with its id sequence intact.
        self._next_flow_id = 0
        self.records: List[SimFlowRecord] = []
        #: In-flight flows by id -- (source, spec) -- so fault injection
        #: can find flows pinned to a failed element and resteer them.
        self._active: Dict[int, Tuple[object, FlowSpec]] = {}
        #: Bytes that were ACKed on flows later aborted (fail-over keeps
        #: that progress: only the remainder is relaunched).
        self._aborted_acked = 0.0

    # --- element plumbing ------------------------------------------------

    def _element_pair(self, plane_idx: int, u: str, v: str) -> Tuple[Queue, Pipe]:
        key = (plane_idx, u, v)
        pair = self._elements.get(key)
        if pair is None:
            plane = self.planes[plane_idx]
            if not plane.has_link(u, v) or plane.is_failed(u, v):
                raise ValueError(
                    f"{u}->{v} is not a live link of plane {plane_idx}"
                )
            link = plane.link(u, v)
            queue = Queue(
                self.loop,
                rate=link.capacity,
                max_packets=self.queue_packets,
                name=f"p{plane_idx}:{u}->{v}",
                ecn_threshold=self.ecn_threshold,
                tracer=self._tracer,
                plane=plane_idx,
            )
            pipe = Pipe(self.loop, link.propagation, name=f"p{plane_idx}:{u}->{v}")
            pair = (queue, pipe)
            self._elements[key] = pair
        return pair

    def _route_elements(self, plane_idx: int, path: Sequence[str]) -> List:
        if len(path) < 2:
            raise ValueError("path must traverse at least one link")
        elements: List = []
        for u, v in zip(path, path[1:]):
            queue, pipe = self._element_pair(plane_idx, u, v)
            elements.append(queue)
            elements.append(pipe)
        return elements

    # --- flow launch ----------------------------------------------------------

    def add_flow(
        self,
        src=_UNSET,
        dst: Optional[str] = None,
        size: Optional[int] = None,
        paths: Optional[Sequence[PlanePath]] = None,
        at: float = 0.0,
        on_complete: Optional[Callable[[SimFlowRecord], None]] = None,
        tag: Optional[str] = None,
        transport: str = "tcp",
        *,
        spec: Optional[FlowSpec] = None,
    ):
        """Launch a flow described by a :class:`FlowSpec`.

        Preferred form::

            net.add_flow(spec=FlowSpec(src="h0", dst="h1", size=1_000_000,
                                       paths=policy.select("h0", "h1", 0)))

        One path -> plain TCP (or DCTCP with ``transport="dctcp"``, which
        requires the network's queues to have an ``ecn_threshold``);
        several paths -> MPTCP with one subflow each.
        Returns the source object (a TcpSource or MptcpSource).

        The legacy positional form ``add_flow(src, dst, size, paths,
        ...)`` still works but emits a :class:`DeprecationWarning`.
        """
        if spec is None and isinstance(src, FlowSpec):
            spec, src = src, _UNSET
        if spec is not None:
            if src is not _UNSET or dst is not None or size is not None \
                    or paths is not None:
                raise TypeError(
                    "pass either a FlowSpec or the legacy positional "
                    "arguments, not both"
                )
        else:
            if src is _UNSET or dst is None or size is None or paths is None:
                raise TypeError(
                    "add_flow requires spec=FlowSpec(...) (or the "
                    "deprecated src, dst, size, paths arguments)"
                )
            warn_positional_add_flow("add_flow")
            spec = FlowSpec(
                src=src, dst=dst, size=size, paths=paths, at=at,
                tag=tag, transport=transport, on_complete=on_complete,
            )
        return self._launch(spec)

    def _launch(self, spec: FlowSpec):
        if spec.transport not in ("tcp", "dctcp"):
            raise ValueError(f"unknown transport {spec.transport!r}")
        if spec.transport == "dctcp" and len(spec.paths) > 1:
            raise ValueError("DCTCP is single-path; use one path")
        at = 0.0 if spec.at is None else spec.at
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        # A bound-method partial (not a closure) so in-flight flows --
        # whose sources hold this completion hook -- pickle for
        # checkpointing.
        finish = functools.partial(self._finish_flow, flow_id, spec)
        source = self._make_source(spec, flow_id, finish)
        self._active[flow_id] = (source, spec)
        self.loop.schedule_at(at, source.start)
        return source

    def _finish_flow(self, flow_id: int, spec: FlowSpec, source) -> None:
        record = SimFlowRecord(
            flow_id=flow_id,
            src=spec.src,
            dst=spec.dst,
            size=spec.size,
            start=source.start_time,
            finish=source.finish_time,
            n_subflows=len(spec.paths),
            retransmits=source.retransmits,
            packets_sent=source.packets_sent,
            tag=spec.tag,
            planes=spec.planes,
        )
        self.records.append(record)
        self._active.pop(flow_id, None)
        if self.obs.enabled:
            obs = self.obs
            planes = spec.planes
            # Even byte split across planes -- the same attribution
            # NetworkMonitor.record_flow applies, so the two views
            # agree exactly.
            share = spec.size / len(planes)
            for plane in planes:
                obs.counter("net.flow.bytes", plane=plane).inc(share)
                obs.counter("net.flows", plane=plane).inc()
                obs.histogram("net.fct_seconds", plane=plane).observe(
                    record.fct
                )
            obs.trace(
                "flow.complete", self.loop.now, flow_id=flow_id,
                src=spec.src, dst=spec.dst, size=spec.size, fct=record.fct,
                planes=list(planes), retransmits=record.retransmits,
            )
        if spec.on_complete is not None:
            spec.on_complete(record)

    def _make_source(self, spec: FlowSpec, flow_id: int, finish):
        """Build and wire the transport source for one spec.

        Overridable: the plane-sharded engine (:mod:`repro.shard`)
        substitutes partial MPTCP sources for flows whose subflows live
        on other shards.
        """
        paths = spec.paths
        if len(paths) == 1:
            from repro.sim.dctcp import DctcpSource

            source_cls = DctcpSource if spec.transport == "dctcp" else TcpSource
            source = source_cls(
                self.loop,
                size=spec.size,
                mss=self.mss,
                min_rto=self.min_rto,
                on_complete=finish,
                name=f"{spec.transport}-{flow_id}",
                tracer=self._tracer,
            )
            self._wire(source, paths[0])
        else:
            source = MptcpSource(
                self.loop,
                size=spec.size,
                n_subflows=len(paths),
                mss=self.mss,
                min_rto=self.min_rto,
                on_complete=finish,
                name=f"mptcp-{flow_id}",
                tracer=self._tracer,
            )
            for subflow, plane_path in zip(source.subflows, paths):
                self._wire(subflow, plane_path)
        return source

    # --- in-flight flow inspection ---------------------------------------

    def active_flows(self) -> List[Tuple[int, object, FlowSpec]]:
        """(flow_id, source, spec) of flows launched but not completed."""
        return [
            (flow_id, source, spec)
            for flow_id, (source, spec) in sorted(self._active.items())
        ]

    def flow_id_of(self, source) -> Optional[int]:
        """The live flow id owning ``source``, or None once completed.

        ``add_flow`` returns the source object, not its id; callers that
        track flows by id across an abort+relaunch (the control plane)
        use this to re-key.
        """
        for flow_id, (candidate, __) in self._active.items():
            if candidate is source:
                return flow_id
        return None

    def abort_flow(self, flow_id: int) -> bool:
        """Abort an in-flight flow (no record, no completion callback).

        Returns False when the flow already completed or is unknown.
        Used by fault injection to tear a flow off a dead path before
        relaunching its remaining bytes elsewhere.
        """
        entry = self._active.pop(flow_id, None)
        if entry is None:
            return False
        source = entry[0]
        acked = getattr(source, "acked_bytes", None)
        self._aborted_acked += source.snd_una if acked is None else acked
        source.abort()
        return True

    @property
    def delivered_bytes(self) -> float:
        """Bytes ACKed so far: completed and aborted flows plus
        in-flight progress."""
        total = float(sum(r.size for r in self.records)) + self._aborted_acked
        for source, __ in self._active.values():
            acked = getattr(source, "acked_bytes", None)
            total += source.snd_una if acked is None else acked
        return total

    def _wire(self, tcp_source: TcpSource, plane_path: PlanePath) -> None:
        plane_idx, path = plane_path
        sink = TcpSink(self.loop, name=f"{tcp_source.name}-sink")
        forward = self._route_elements(plane_idx, path)
        backward = self._route_elements(plane_idx, list(reversed(path)))
        tcp_source.route_out = forward + [sink]
        sink.route_back = backward + [tcp_source]

    def wire(self, tcp_source: TcpSource, plane_path: PlanePath) -> None:
        """Wire a caller-built source/subflow onto one plane path.

        Instantiates queues/pipes along the path (and the reverse ACK
        path), creates the sink, and connects both routes.  The sharded
        engine uses this to attach partial MPTCP sources it constructs
        itself; ordinary callers should go through :meth:`add_flow`.
        """
        self._wire(tcp_source, plane_path)

    # --- mid-run failures -----------------------------------------------------------

    def fail_link(self, plane_idx: int, u: str, v: str) -> None:
        """Cut a link during the simulation.

        Both directions black-hole immediately (in-queue packets are
        lost); the topology is marked failed so path selection performed
        after :meth:`~repro.core.pnet.PNet.invalidate_routing` avoids it.
        Flows already pinned to the link stall into RTO -- exactly what a
        real cut does to a source-routed flow.
        """
        self.planes[plane_idx].fail_link(u, v)
        for a, b in ((u, v), (v, u)):
            pair = self._elements.get((plane_idx, a, b))
            if pair is not None:
                pair[0].fail()

    def restore_link(self, plane_idx: int, u: str, v: str) -> None:
        self.planes[plane_idx].restore_link(u, v)
        for a, b in ((u, v), (v, u)):
            pair = self._elements.get((plane_idx, a, b))
            if pair is not None:
                pair[0].restore()

    # --- execution -----------------------------------------------------------------

    def run(self, until: float = math.inf, max_events: int = 500_000_000) -> None:
        self.loop.run(until=until, max_events=max_events)
        if self.obs.enabled:
            self.publish_queue_stats()

    # --- statistics -------------------------------------------------------------------

    @property
    def total_drops(self) -> int:
        return sum(q.drops for q, __ in self._elements.values())

    @property
    def total_ecn_marks(self) -> int:
        return sum(q.ecn_marks for q, __ in self._elements.values())

    @property
    def total_retransmits(self) -> int:
        return sum(r.retransmits for r in self.records)

    def queue_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-queue (packets forwarded, drops), keyed by queue name."""
        return {
            q.name: (q.packets_forwarded, q.drops)
            for q, __ in self._elements.values()
        }

    def plane_queue_totals(self) -> Dict[int, Dict[str, int]]:
        """Per-plane queue counter sums (forwarded/drops/bytes/ECN)."""
        totals: Dict[int, Dict[str, int]] = {
            idx: {
                "packets_forwarded": 0, "drops": 0,
                "bytes_forwarded": 0, "ecn_marks": 0,
            }
            for idx in range(len(self.planes))
        }
        for (plane_idx, __, ___), (queue, ____) in self._elements.items():
            plane = totals[plane_idx]
            plane["packets_forwarded"] += queue.packets_forwarded
            plane["drops"] += queue.drops
            plane["bytes_forwarded"] += queue.bytes_forwarded
            plane["ecn_marks"] += queue.ecn_marks
        return totals

    def publish_queue_stats(self) -> None:
        """Publish per-plane queue counters to the obs registry as gauges.

        Gauges are set to the current totals, so calling this after
        every :meth:`run` is idempotent.
        """
        obs = self.obs
        for plane_idx, totals in self.plane_queue_totals().items():
            for stat, value in totals.items():
                obs.gauge(f"sim.plane.{stat}", plane=plane_idx).set(value)
