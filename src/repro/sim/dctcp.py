"""DCTCP: Data Center TCP [6] on top of the NewReno source.

The paper defers incast to "incast-aware transports like DCTCP" (section
6.5); this module provides that transport so the incast extension can
test the claim.  Mechanism (Alizadeh et al.):

* switches mark packets with CE once the instantaneous queue exceeds a
  threshold K (see :class:`repro.sim.link.Queue`'s ``ecn_threshold``);
* the receiver echoes marks on ACKs (:class:`repro.sim.tcp.TcpSink`);
* the sender keeps an EWMA ``alpha`` of the *fraction* of marked bytes
  per window (gain g = 1/16) and, once per window with any marks, cuts
  ``cwnd`` by ``alpha / 2`` -- gentle, proportional backoff instead of
  NewReno's halving, keeping queues short without collapsing throughput.

Loss handling (timeouts, fast retransmit) is inherited unchanged from
NewReno, as in the DCTCP paper.
"""

from __future__ import annotations

from repro.sim.packet import Packet
from repro.sim.tcp import TcpSource

#: EWMA gain for the mark-fraction estimator (DCTCP paper's g).
DCTCP_GAIN = 1.0 / 16.0


class DctcpSource(TcpSource):
    """TCP NewReno sender with DCTCP's ECN-proportional window control."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self._acked_bytes_window = 0
        self._marked_bytes_window = 0
        self._window_end = 0
        self._cut_this_window = False

    def _handle_ack(self, packet: Packet) -> None:
        prev_una = self.snd_una
        super()._handle_ack(packet)
        newly = self.snd_una - prev_una
        if newly > 0:
            self._acked_bytes_window += newly
            if packet.ece:
                self._marked_bytes_window += newly
            if self.snd_una >= self._window_end:
                self._end_of_window()

    def _end_of_window(self) -> None:
        """Per-window alpha update and proportional cut (DCTCP core)."""
        if self._acked_bytes_window > 0:
            fraction = (
                self._marked_bytes_window / self._acked_bytes_window
            )
            self.alpha = (
                (1 - DCTCP_GAIN) * self.alpha + DCTCP_GAIN * fraction
            )
            if self._marked_bytes_window > 0 and not self.in_recovery:
                self.cwnd = max(
                    self.cwnd * (1 - self.alpha / 2), float(self.mss)
                )
                # Marked windows also end slow start.
                self.ssthresh = min(self.ssthresh, self.cwnd)
        self._acked_bytes_window = 0
        self._marked_bytes_window = 0
        self._window_end = self.snd_nxt

    def _slow_start_increase(self, newly_acked: int) -> None:
        super()._slow_start_increase(newly_acked)

    def __repr__(self) -> str:
        return f"DctcpSource({self.name!r}, alpha={self.alpha:.3f})"
