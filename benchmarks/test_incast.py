"""Benchmark: incast extension (paper section 6.5 hypothesis)."""

from _util import emit

from repro.exp import incast
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_LOW,
    format_table,
)


def test_incast(benchmark):
    result = benchmark.pedantic(incast.run, rounds=1, iterations=1)
    rows = [
        [
            label, fan_in,
            f"{s.median * 1e6:.1f}", f"{s.maximum * 1e6:.1f}",
            result.losses[(label, fan_in)][0],
            result.losses[(label, fan_in)][1],
        ]
        for (label, fan_in), s in sorted(result.stats.items())
    ]
    emit(
        "incast",
        format_table(
            ["network", "fan-in", "median us", "max us", "drops", "retx"],
            rows,
        ),
    )

    top = max(f for __, f in result.stats)
    serial_drops, __ = result.losses[(SERIAL_LOW, top)]
    homo_drops, __ = result.losses[(PARALLEL_HOMOGENEOUS, top)]
    # Spreading the burst over planes cuts drops (the paper's hypothesis).
    assert homo_drops <= serial_drops
    assert (
        result.stats[(PARALLEL_HOMOGENEOUS, top)].maximum
        <= result.stats[(SERIAL_LOW, top)].maximum
    )
