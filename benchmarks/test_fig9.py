"""Benchmark: regenerate Figure 9 (small-flow FCT vs flow size)."""

from _util import emit

from repro.exp import fig9
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_HIGH,
    SERIAL_LOW,
    format_table,
)
from repro.units import GB, KB, MB


def test_fig9(benchmark):
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    sizes = sorted(next(iter(result.mean_fct.values())))
    headers = ["network"] + [
        (f"{s // GB}GB" if s >= GB else
         f"{s // MB}MB" if s >= MB else f"{s // KB}kB")
        for s in sizes
    ]
    text = format_table(
        headers,
        [
            [label] + [f"{series[s] * 1e3:.3f}ms" for s in sizes]
            for label, series in result.mean_fct.items()
        ],
    )
    emit("fig9", text)

    # Cross-validate the headline small-flow ordering on the
    # packet-level simulator (real TCP/MPTCP slow start).
    pkt = fig9.packet_sim_validation()
    emit(
        "fig9_packet_validation",
        format_table(
            ["network", "packet-sim mean FCT (us) @100kB"],
            [[label, f"{v * 1e6:.1f}"] for label, v in pkt.items()],
        ),
    )
    assert pkt[PARALLEL_HOMOGENEOUS] < pkt[SERIAL_HIGH]

    base = result.mean_fct[SERIAL_LOW]
    homo = result.mean_fct[PARALLEL_HOMOGENEOUS]
    high = result.mean_fct[SERIAL_HIGH]
    small, bulk = sizes[0], sizes[-1]
    # Small flows: P-Net beats even serial high-bandwidth (slow start).
    assert homo[small] < high[small]
    # Bulk flows: P-Net well ahead of serial-low, near serial-high.
    assert homo[bulk] < 0.5 * base[bulk]
    assert homo[bulk] < 2.0 * high[bulk]
