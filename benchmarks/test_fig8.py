"""Benchmark: regenerate Figure 8 (Jellyfish KSP + multipath scaling)."""

from _util import emit

from repro.exp import fig8
from repro.exp.common import format_table


def test_fig8(benchmark):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)

    panel_ab = format_table(
        ["variant", "planes", "8a all-to-all 8KSP", "8b permutation 8KSP"],
        [
            [v, n, f"{result.ksp8_all_to_all[(v, n)]:.2f}",
             f"{result.ksp8_permutation[(v, n)]:.2f}"]
            for v, n in sorted(result.ksp8_all_to_all)
        ],
    )
    ks = sorted(next(iter(result.multipath.values())))
    panel_c = format_table(
        ["variant", "planes"] + [f"K={k}" for k in ks] + ["saturating K"],
        [
            [v, n] + [f"{result.multipath[(v, n)][k]:.2f}" for k in ks]
            + [result.saturation_k[(v, n)]]
            for v, n in sorted(result.multipath)
        ],
    )
    emit("fig8", panel_ab + "\n\n" + panel_c)

    top = max(n for __, n in result.ksp8_all_to_all)
    for variant in ("homogeneous", "heterogeneous"):
        # 8a: all-to-all saturates under the default 8-way KSP.
        assert result.ksp8_all_to_all[(variant, top)] >= 0.8 * top
        # 8c: more planes need more subflows.
        sats = [
            result.saturation_k[(variant, n)]
            for __, n in sorted(k for k in result.saturation_k if k[0] == variant)
        ]
        assert sats == sorted(sats)
