"""Benchmark: regenerate Figure 10 + Table 2 (1500B RPC latency)."""

from _util import emit

from repro.exp import fig10
from repro.exp.common import (
    PARALLEL_HETEROGENEOUS,
    PARALLEL_HOMOGENEOUS,
    SERIAL_HIGH,
    format_table,
)


def test_fig10_table2(benchmark):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    table2 = result.table2()
    text = format_table(
        ["network", "median", "average", "99%-tile"],
        [
            [label, f"{v['median']:.1%}", f"{v['average']:.1%}",
             f"{v['p99']:.1%}"]
            for label, v in table2.items()
        ],
    )
    emit("fig10_table2", text)

    # The Figure-10 curves themselves: downsampled completion-time CDFs.
    from repro.analysis.stats import cdf_points

    blocks = []
    for label, times in result.completion_times.items():
        points = cdf_points(times)
        step = max(1, len(points) // 20)
        sampled = points[::step] + [points[-1]]
        blocks.append(
            f"{label}:\n" + "\n".join(
                f"  {t * 1e6:9.2f} us  p={p:.3f}" for t, p in sampled
            )
        )
    emit("fig10_cdf", "\n\n".join(blocks))

    # Paper Table 2: hetero ~80% median; homo ~100%; serial-high ~98%.
    assert table2[PARALLEL_HETEROGENEOUS]["median"] < 0.95
    assert abs(table2[PARALLEL_HOMOGENEOUS]["median"] - 1.0) < 0.05
    assert 0.90 < table2[SERIAL_HIGH]["median"] <= 1.0
