"""Benchmark: plane-sharded engine wall-clock vs the serial simulator.

Two scenarios, both recorded in ``results/BENCH_shard.json``:

* ``coupled`` -- the fig9-style workload where every flow is a
  spanning MPTCP connection across all four planes: the epoch-barrier
  path (lookahead batching, shm digest exchange) is what's timed, under
  both the ``shm`` and ``process`` channel backends.
* ``bulk`` -- plane-local bulk transfers, the paper's bread-and-butter
  scale-out case: no coupling, infinite lookahead, every worker
  free-runs to completion.  This is where sharding must *beat* serial
  on real cores, and the speedup assertion enforces it wherever the
  machine has >= 2 CPUs.

Portable guarantees asserted everywhere (including 1-CPU CI, where the
coupled scenario is expected to be slower than serial): repeat runs at
a fixed shard count are byte-identical, the bulk decomposition is
byte-identical to serial, and coupled FCT deviation stays inside the
documented epoch-staleness envelope.
"""

import math
import os
import pickle
import random
import time

from _util import emit_json

from repro.core.flowspec import FlowSpec
from repro.core.path_selection import KspMultipathPolicy
from repro.exp.common import (
    JellyfishFamily,
    PARALLEL_HOMOGENEOUS,
    network_for_label,
)
from repro.routing.shortest import all_shortest_paths
from repro.shard import DEFAULT_EPOCH, run_packet_trial
from repro.traffic.patterns import permutation
from repro.units import KB, MB

SWITCHES, DEGREE, HOSTS_PER, N_PLANES = 12, 5, 2, 4
FLOW_BYTES = 200 * KB  # coupled: per spanning MPTCP connection
BULK_BYTES = 2 * MB  # bulk: per plane-local flow


def _pnet():
    family = JellyfishFamily(SWITCHES, DEGREE, HOSTS_PER)
    return network_for_label(family, PARALLEL_HOMOGENEOUS, N_PLANES)


def _coupled_workload(pnet):
    """Every host pair spans all four planes: barrier-dominated."""
    pairs = permutation(pnet.hosts, random.Random("fig9-pkt"))
    policy = KspMultipathPolicy(pnet, k=N_PLANES, seed=0)
    return [
        FlowSpec(
            src=src, dst=dst, size=FLOW_BYTES,
            paths=policy.select(src, dst, flow_id),
        )
        for flow_id, (src, dst) in enumerate(pairs)
    ]


def _bulk_workload(pnet):
    """Plane-local bulk transfers, round-robined over the planes."""
    pairs = permutation(pnet.hosts, random.Random("bulk"))
    specs = []
    for flow_id, (src, dst) in enumerate(pairs):
        plane = flow_id % N_PLANES
        path = all_shortest_paths(pnet.planes[plane], src, dst)[0]
        specs.append(FlowSpec(
            src=src, dst=dst, size=BULK_BYTES, paths=[(plane, path)],
        ))
    return specs


def _timed_run(pnet, specs, shards, backend=None):
    started = time.perf_counter()
    result = run_packet_trial(
        pnet.planes, specs, shards=shards, epoch=DEFAULT_EPOCH,
        backend=backend,
    )
    wall = time.perf_counter() - started
    return result, wall


def _config_entry(result, wall, serial_wall, serial_fcts):
    deviations = [
        abs(fct - base) / base
        for fct, base in zip(result.fcts, serial_fcts)
    ]
    return {
        "n_shards": result.n_shards,
        "backend": result.backend,
        "rounds": result.rounds,
        "lookahead": None if math.isinf(result.lookahead)
        else result.lookahead,
        "stride": result.stride,
        "wall_seconds": round(wall, 4),
        "speedup_vs_serial": round(serial_wall / wall, 3),
        "mean_fct_seconds": sum(result.fcts) / len(result.fcts),
        "max_fct_deviation": max(deviations),
        "mean_fct_deviation": sum(deviations) / len(deviations),
    }


def test_shard_scaling(benchmark):
    pnet = _pnet()
    coupled = _coupled_workload(pnet)
    bulk = _bulk_workload(pnet)
    payload = {
        "workload": {
            "experiment": "fig9-packet",
            "network": PARALLEL_HOMOGENEOUS,
            "switches": SWITCHES,
            "degree": DEGREE,
            "hosts_per": HOSTS_PER,
            "n_planes": N_PLANES,
            "coupled_flow_bytes": FLOW_BYTES,
            "bulk_flow_bytes": BULK_BYTES,
            "n_flows": len(coupled),
        },
        "epoch": DEFAULT_EPOCH,
        "cpu_count": os.cpu_count(),
        "scenarios": {"coupled": {}, "bulk": {}},
    }

    # --- coupled: barrier-dominated spanning MPTCP ----------------------
    serial, serial_wall = benchmark.pedantic(
        _timed_run, args=(pnet, coupled, 1), rounds=1, iterations=1
    )
    configs = payload["scenarios"]["coupled"]
    configs["1"] = _config_entry(serial, serial_wall, serial_wall, serial.fcts)
    for shards, backend in ((2, "shm"), (4, "shm"), (4, "process")):
        result, wall = _timed_run(pnet, coupled, shards, backend=backend)
        # Determinism across repeats is the portable guarantee: same
        # shard count, same bytes out.
        repeat, __ = _timed_run(pnet, coupled, shards, backend=backend)
        assert pickle.dumps(repeat.records) == pickle.dumps(result.records)
        entry = _config_entry(result, wall, serial_wall, serial.fcts)
        configs[f"{shards}-{backend}"] = entry
        # Generous envelope: tests/test_shard_coupling.py pins the real
        # epoch-staleness bound; this file's job is the timing record.
        assert entry["max_fct_deviation"] < 0.50

    # --- bulk: plane-local free-running scale-out -----------------------
    bulk_serial, bulk_serial_wall = _timed_run(pnet, bulk, 1)
    configs = payload["scenarios"]["bulk"]
    configs["1"] = _config_entry(
        bulk_serial, bulk_serial_wall, bulk_serial_wall, bulk_serial.fcts
    )
    for shards in (2, 4):
        result, wall = _timed_run(pnet, bulk, shards, backend="shm")
        # The decomposition is exact: zero barrier rounds and records
        # byte-identical to serial, at every shard count.  Per-record
        # pickles, not one list blob: pickle memoizes shared host
        # strings within a process, so the merged cross-process list
        # encodes differently even when every record is identical.
        assert result.rounds == 0
        assert [pickle.dumps(r) for r in result.records] == [
            pickle.dumps(r) for r in bulk_serial.records
        ]
        configs[str(shards)] = _config_entry(
            result, wall, bulk_serial_wall, bulk_serial.fcts
        )
    if os.cpu_count() and os.cpu_count() >= 2:
        # The headline claim -- sharding beats serial -- only needs the
        # machine to actually have parallel cores.
        best = max(
            configs[str(s)]["speedup_vs_serial"] for s in (2, 4)
        )
        assert best > 1.0, (
            f"plane-sharded bulk run slower than serial on "
            f"{os.cpu_count()} cores: {configs}"
        )

    emit_json("BENCH_shard", payload)
