"""Benchmark: plane-sharded engine wall-clock vs the serial simulator.

Runs one fixed fig9-style packet trial (4-plane Jellyfish, permutation
traffic, 4-way KSP MPTCP) serial and at 2 and 4 plane shards, and
records the wall-clocks plus the resulting FCT deviation in
``results/BENCH_shard.json``.  Speedup needs real cores: on the 1-CPU
CI container the sharded runs are *expected* to be no faster (barrier
and pickling overhead with zero parallelism), so nothing here asserts
on wall-clock.  What must hold everywhere: repeat runs at a fixed
shard count are byte-identical, and the sharded FCT deviation from
serial stays within the documented epoch-staleness bound.
"""

import os
import pickle
import random
import time

from _util import emit_json

from repro.core.flowspec import FlowSpec
from repro.core.path_selection import KspMultipathPolicy
from repro.exp.common import (
    JellyfishFamily,
    PARALLEL_HOMOGENEOUS,
    network_for_label,
)
from repro.shard import DEFAULT_EPOCH, run_packet_trial
from repro.traffic.patterns import permutation
from repro.units import KB

#: Fixed tiny fig9 workload: every host pair runs one spanning MPTCP
#: connection across all four planes, so the epoch-coupling path (not
#: just the embarrassingly parallel local-flow path) is what's timed.
SWITCHES, DEGREE, HOSTS_PER, N_PLANES = 12, 5, 2, 4
FLOW_BYTES = 200 * KB


def _workload():
    family = JellyfishFamily(SWITCHES, DEGREE, HOSTS_PER)
    pnet = network_for_label(family, PARALLEL_HOMOGENEOUS, N_PLANES)
    pairs = permutation(pnet.hosts, random.Random("fig9-pkt"))
    policy = KspMultipathPolicy(pnet, k=N_PLANES, seed=0)
    specs = [
        FlowSpec(
            src=src, dst=dst, size=FLOW_BYTES,
            paths=policy.select(src, dst, flow_id),
        )
        for flow_id, (src, dst) in enumerate(pairs)
    ]
    return pnet, specs


def _timed_run(pnet, specs, shards):
    started = time.perf_counter()
    result = run_packet_trial(
        pnet.planes, specs, shards=shards, epoch=DEFAULT_EPOCH
    )
    wall = time.perf_counter() - started
    return result, wall


def test_shard_scaling(benchmark):
    pnet, specs = _workload()

    serial, serial_wall = benchmark.pedantic(
        _timed_run, args=(pnet, specs, 1), rounds=1, iterations=1
    )
    runs = {1: (serial, serial_wall)}
    for shards in (2, 4):
        runs[shards] = _timed_run(pnet, specs, shards)
        # Determinism across repeats is the portable guarantee (the
        # 1-CPU CI container cannot show speedup): same shard count,
        # same bytes out.
        repeat, __ = _timed_run(pnet, specs, shards)
        assert pickle.dumps(repeat.records) == pickle.dumps(
            runs[shards][0].records
        )

    payload = {
        "workload": {
            "experiment": "fig9-packet",
            "network": PARALLEL_HOMOGENEOUS,
            "switches": SWITCHES,
            "degree": DEGREE,
            "hosts_per": HOSTS_PER,
            "n_planes": N_PLANES,
            "flow_bytes": FLOW_BYTES,
            "n_flows": len(specs),
        },
        "epoch": DEFAULT_EPOCH,
        "cpu_count": os.cpu_count(),
        "configs": {},
    }
    serial_fcts = serial.fcts
    for shards, (result, wall) in sorted(runs.items()):
        deviations = [
            abs(fct - base) / base
            for fct, base in zip(result.fcts, serial_fcts)
        ]
        payload["configs"][str(shards)] = {
            "n_shards": result.n_shards,
            "backend": result.backend,
            "rounds": result.rounds,
            "wall_seconds": round(wall, 4),
            "speedup_vs_serial": round(serial_wall / wall, 3),
            "mean_fct_seconds": sum(result.fcts) / len(result.fcts),
            "max_fct_deviation": max(deviations),
            "mean_fct_deviation": sum(deviations) / len(deviations),
        }
        # The epoch-staleness bound tests/test_shard_coupling.py pins
        # down; generous here because this file's job is the timing
        # record, not the convergence proof.
        assert max(deviations) < 0.50
    emit_json("BENCH_shard", payload)
