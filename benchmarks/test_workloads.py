"""Benchmark: production workload scenarios across engines.

Runs every scenario family on the parallel-homogeneous tiny network at
each engine fidelity and emits ``BENCH_workloads.json``: per
scenario/engine rows with wall-clock, delivered throughput, and the
FCT tail.  The diurnal mix additionally goes through the steady-state
driver, so its row carries the offered-load estimate with its
confidence interval -- the statistical sanity line CI watches.
"""

import time

from _util import emit_json

from repro.exp.common import JellyfishFamily
from repro.units import Gbps
from repro.workloads import (
    DiurnalScenario,
    get_scenario,
    run_scenario,
    steady_state,
)

SCENARIOS = {
    "incast": dict(fan_in=8, block=1_000_000),
    "coflow": dict(
        n_coflows=2, n_mappers=3, n_reducers=3, total_bytes=4_000_000,
        mean_interarrival=1e-4,
    ),
    "allreduce": dict(n_workers=4, payload=4_000_000, algorithm="ring"),
}
ENGINES = ("packet", "fluid", "hybrid")
PROMOTION = "sampled:0.25:0"


def _closed_row(pnet, name, engine):
    kwargs = {}
    if engine != "packet":
        kwargs["slow_start"] = True
    if engine == "hybrid":
        kwargs["promotion"] = PROMOTION
    t0 = time.perf_counter()
    result = run_scenario(
        get_scenario(name, **SCENARIOS[name]), pnet,
        engine=engine, seed=0, **kwargs,
    )
    wall = time.perf_counter() - t0
    fct = result.fct_summary()
    return {
        "n_flows": result.program.n_flows,
        "bytes": result.program.total_bytes,
        "makespan_s": result.makespan,
        "throughput_bps": 8 * result.program.total_bytes / result.makespan,
        "fct_median_s": fct.median,
        "fct_p99_s": fct.p99,
        "wall_s": wall,
    }


def _diurnal_row(pnet, engine):
    scenario = DiurnalScenario(
        n_tenants=2, duration=0.1, load=0.3, period=0.05,
        amplitude=0.0, traces=["webserver"], host_rate=10 * Gbps,
    )
    kwargs = {"slow_start": True} if engine != "packet" else {}
    if engine == "hybrid":
        kwargs["promotion"] = PROMOTION
    t0 = time.perf_counter()
    report = steady_state(scenario, pnet, engine=engine, seed=2, **kwargs)
    wall = time.perf_counter() - t0
    row = report.to_row()
    row["wall_s"] = wall
    return row


def test_workloads(benchmark):
    pnet = JellyfishFamily(10, 4, 2).parallel_homogeneous(4)

    def run_all():
        rows = {}
        for name in sorted(SCENARIOS):
            for engine in ENGINES:
                rows[f"{name}/{engine}"] = _closed_row(pnet, name, engine)
        for engine in ("fluid", "hybrid"):
            rows[f"diurnal/{engine}"] = _diurnal_row(pnet, engine)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Every engine completed every scenario's full program.
    for name in sorted(SCENARIOS):
        counts = {e: rows[f"{name}/{e}"]["n_flows"] for e in ENGINES}
        assert len(set(counts.values())) == 1, counts
    # The steady-state sanity line: measured offered load brackets the
    # configured target.
    for engine in ("fluid", "hybrid"):
        row = rows[f"diurnal/{engine}"]
        lo, hi = row["offered_load_ci"]
        assert lo <= row["target_load"] <= hi, row

    emit_json("BENCH_workloads", {
        "network": "parallel-homogeneous jellyfish-10x4x2, 4 planes",
        "promotion": PROMOTION,
        "rows": rows,
    })
