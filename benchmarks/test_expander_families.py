"""Benchmark: expander-family generality of the heterogeneity claims."""

from _util import emit

from repro.exp import expander_families
from repro.exp.common import format_table


def test_expander_families(benchmark):
    result = benchmark.pedantic(
        expander_families.run, rounds=1, iterations=1
    )
    emit(
        "expander_families",
        format_table(
            ["family", "avg best-path hops", "hop inflation @30%",
             "ideal tput vs serial-high"],
            [
                [
                    name,
                    f"{result.hop_count[name]:.3f}",
                    f"+{result.hop_inflation[name]:.1%}",
                    f"{result.throughput_ratio[name]:.2f}x",
                ]
                for name in sorted(result.hop_count)
            ],
        ),
    )
    # The heterogeneity benefits hold for BOTH expander families:
    for name in ("jellyfish", "xpander"):
        assert result.throughput_ratio[name] > 1.0  # beats serial-high
        assert result.hop_inflation[name] < 0.30  # resilient
