"""Benchmark: regenerate Figure 11 (concurrent 100kB RPCs)."""

from _util import emit

from repro.exp import fig11
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_LOW,
    format_table,
)


def test_fig11(benchmark):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    rows = [
        [
            label, conc,
            f"{s.median * 1e6:.1f}", f"{s.p90 * 1e6:.1f}",
            f"{s.p99 * 1e6:.1f}",
            result.retransmits[(label, conc)],
        ]
        for (label, conc), s in sorted(result.stats.items())
    ]
    text = format_table(
        ["network", "concurrency", "median us", "p90 us", "p99 us",
         "retransmits"],
        rows,
    )
    emit("fig11", text)

    top = max(c for __, c in result.stats)
    # Serial-low's tail collapses first; P-Nets keep fewer retransmits.
    assert (
        result.stats[(SERIAL_LOW, top)].p99
        > result.stats[(PARALLEL_HOMOGENEOUS, top)].p99
    )
    assert (
        result.retransmits[(PARALLEL_HOMOGENEOUS, top)]
        <= result.retransmits[(SERIAL_LOW, top)]
    )
