"""Benchmark: regenerate Figure 7 (ideal Jellyfish rack-level throughput)."""

from _util import emit

from repro.exp import fig7
from repro.exp.common import format_table


def test_fig7(benchmark):
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    text = format_table(
        ["planes", "hetero (normalised)", "serial-high", "ratio"],
        [
            [
                n,
                f"{result.heterogeneous[n]:.2f}",
                f"{result.serial_high[n]:.2f}",
                f"{result.heterogeneous[n] / result.serial_high[n]:.2f}",
            ]
            for n in sorted(result.heterogeneous)
        ],
    )
    emit("fig7", text)
    for n in result.heterogeneous:
        if n > 1:
            ratio = result.heterogeneous[n] / result.serial_high[n]
            assert 1.0 < ratio < 2.0  # paper: "up to 60% higher"
    assert result.homogeneous_check is not None
