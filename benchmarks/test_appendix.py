"""Benchmark: regenerate Appendix A (Figures 16-20, trace FCT grid)."""

from _util import emit

from repro.exp import appendix
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_LOW,
    format_table,
)
from repro.units import Gbps


def test_appendix(benchmark):
    result = benchmark.pedantic(appendix.run, rounds=1, iterations=1)
    rows = [
        [
            family,
            f"{rate / Gbps:.0f}G",
            trace,
            label,
            f"{s.median * 1e6:.1f}",
            f"{s.p99 * 1e6:.1f}",
        ]
        for (family, rate, trace, label) in sorted(result.stats)
        for s in [result.stats[(family, rate, trace, label)]]
    ]
    emit(
        "appendix",
        format_table(
            ["family", "rate", "trace", "network", "median us", "p99 us"],
            rows,
        ),
    )

    # Broad check: at every grid point the P-Net's median FCT is no worse
    # than ~serial-low's (the appendix's overall conclusion).
    grid = {
        (family, rate, trace)
        for (family, rate, trace, __) in result.stats
    }
    wins = 0
    for family, rate, trace in grid:
        homo = result.stats[(family, rate, trace, PARALLEL_HOMOGENEOUS)]
        serial = result.stats[(family, rate, trace, SERIAL_LOW)]
        if homo.median <= serial.median * 1.10:
            wins += 1
    assert wins >= 0.8 * len(grid)
