"""Benchmark: path-selection design-choice ablations (DESIGN.md §5)."""

from _util import emit

from repro.exp import ablation
from repro.exp.common import format_table


def test_ablation(benchmark):
    result = benchmark.pedantic(ablation.run, rounds=1, iterations=1)
    text = format_table(
        ["variant", "normalised throughput"],
        [
            [name, f"{value:.2f}"]
            for name, value in sorted(
                result.throughput.items(), key=lambda kv: -kv[1]
            )
        ],
    )
    emit("ablation", text)

    paper = result.throughput["pooled-randomised (paper)"]
    pinned = result.throughput["pinned-plane"]
    # Pooling across planes is the load-bearing choice: pinning caps a
    # flow at one plane's uplink.
    assert paper >= 0.95 * result.n_planes
    assert pinned <= 1.05
    # Randomised tie-breaking beats deterministic ties at small K.
    rand = next(v for k, v in result.throughput.items()
                if k.startswith("randomised-ties"))
    lex = next(v for k, v in result.throughput.items()
               if k.startswith("lexicographic-ties"))
    assert rand > lex
