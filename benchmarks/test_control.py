"""Benchmark: the adaptive control plane vs static KSP placement.

Runs :mod:`repro.exp.control` (sparse K-of-N KSP permutation on a
heterogeneous 4-plane Jellyfish, healthy and under a scheduled plane
outage) and emits ``BENCH_control.json``: per-variant mean FCT and
speedup, the summed controller counters, and the pinned skewed matrix
-- the seed where load-aware plane selection beats the static baseline
hardest.  The assertion is the headline claim of the extension: there
is at least one skewed matrix where measurement-driven resteering wins.
"""

import time

from _util import emit_json

from repro.exp.control import POLICY_VARIANTS, run


def test_control(benchmark):
    def run_exp():
        t0 = time.perf_counter()
        result = run()
        result_wall = time.perf_counter() - t0
        return result, result_wall

    result, wall = benchmark.pedantic(run_exp, rounds=1, iterations=1)

    # Every variant completed the same matrices.
    for variant in POLICY_VARIANTS:
        assert result.mean_fct[variant] > 0

    # The controller actually ran (ticks accumulate even when a policy
    # holds fire) ...
    assert result.stats["load-aware"]["ticks"] > 0
    # ... and on at least one skewed matrix load-aware resteering beat
    # the static KSP placement.
    assert result.best["speedup"] > 1.0, (
        "load-aware never beat static KSP on any seed: "
        f"{result.per_seed['load-aware']}"
    )

    emit_json("BENCH_control", {
        "network": (
            f"parallel-heterogeneous jellyfish, {result.n_hosts} hosts "
            f"x {result.n_planes} planes, sparse KSP permutation"
        ),
        "wall_s": wall,
        "mean_fct": result.mean_fct,
        "speedup": result.speedup,
        "per_seed": {
            variant: {str(seed): value for seed, value in seeds.items()}
            for variant, seeds in result.per_seed.items()
        },
        "control_stats": result.stats,
        "best_matrix": result.best,
    })
