"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at the current
``PNET_SCALE`` (default "small") and writes the rendered rows/series to
``benchmarks/results/<name>.txt`` so the regenerated data survives the
run (pytest captures stdout by default).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a rendered result block and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n--- {name} ---\n{text}")
