"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at the current
``PNET_SCALE`` (default "small") and writes the rendered rows/series to
``benchmarks/results/<name>.txt`` so the regenerated data survives the
run (pytest captures stdout by default).

Each result block gets a trailing runner line (wall-clock, worker count,
artifact-cache hit/miss counts) when the experiment ran through
:mod:`repro.exp.runner`, so benchmark output doubles as a record of how
much the cache and the process pool helped.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _runner_line() -> str:
    """One-line wall-clock/cache summary of the last trial-grid run."""
    from repro.exp.runner import last_stats

    stats = last_stats()
    if stats is None:
        return ""
    return f"[runner] {stats.summary()}"


def emit(name: str, text: str) -> None:
    """Print a rendered result block and persist it under results/.

    The write is atomic (temp file in the target directory + rename) so
    a crashed or parallel benchmark run never leaves a half-written
    result file behind.
    """
    runner = _runner_line()
    if runner:
        text = f"{text}\n{runner}"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=RESULTS_DIR, prefix=f".{name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text + "\n")
        os.replace(tmp, RESULTS_DIR / f"{name}.txt")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    print(f"\n--- {name} ---\n{text}")


def emit_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result as ``results/<name>.json``.

    Same atomic temp-file-and-rename discipline as :func:`emit`, for
    benchmarks whose numbers feed tooling (e.g. the shard-scaling
    record) rather than a rendered table.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=RESULTS_DIR, prefix=f".{name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, RESULTS_DIR / f"{name}.json")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    print(f"\n--- {name} ---\n{json.dumps(payload, indent=2, sort_keys=True)}")
