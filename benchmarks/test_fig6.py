"""Benchmark: regenerate Figure 6 (fat tree ECMP + multipath scaling)."""

from _util import emit

from repro.exp import fig6
from repro.exp.common import format_table


def test_fig6(benchmark):
    result = benchmark.pedantic(fig6.run, rounds=1, iterations=1)

    planes = sorted(result.ecmp_all_to_all)
    panel_ab = format_table(
        ["planes", "6a all-to-all ECMP", "6b permutation ECMP"],
        [
            [n, f"{result.ecmp_all_to_all[n]:.2f}",
             f"{result.ecmp_permutation[n]:.2f}"]
            for n in planes
        ],
    )
    ks = sorted(next(iter(result.multipath.values())))
    panel_c = format_table(
        ["planes \\ K"] + [str(k) for k in ks] + ["saturating K"],
        [
            [n] + [f"{result.multipath[n][k]:.2f}" for k in ks]
            + [result.saturation_k[n]]
            for n in sorted(result.multipath)
        ],
    )
    emit("fig6", panel_ab + "\n\n" + panel_c)

    top = planes[-1]
    # 6a: dense traffic saturates; 6b: sparse ECMP wastes the planes.
    assert result.ecmp_all_to_all[top] >= 0.75 * top
    assert result.ecmp_permutation[top] < 0.5 * top
    # 6c: saturating K grows with plane count.
    sat = [result.saturation_k[n] for n in sorted(result.saturation_k)]
    assert sat == sorted(sat) and sat[-1] > sat[0]
