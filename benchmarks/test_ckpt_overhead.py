"""Benchmark: checkpoint write/restore cost vs an uncheckpointed run.

Runs one fixed packet workload plain and with periodic
:func:`repro.ckpt.run_checkpointed` snapshots, times a single
save/restore round trip, and records it all in
``results/BENCH_ckpt.json``.  Wall-clock ratios vary with the machine,
so the only hard assertions are the portable ones: the checkpointed
run's records are byte-identical to the plain run's, and a restore of
the last snapshot finishes to the same bytes.
"""

import os
import pickle
import tempfile
import time

from _util import emit_json

from repro.ckpt import restore, run_checkpointed, save
from repro.ckpt.store import checkpoints_size_bytes, list_checkpoints
from repro.core.flowspec import FlowSpec
from repro.sim.network import PacketNetwork
from repro.topology.graph import HOST, TOR, Topology
from repro.units import Gbps, MB

FLOW_BYTES = int(4 * MB)
EVERY = 5e-5  # simulated seconds between snapshots


def _dumbbell(cap=100 * Gbps, prop=1e-6):
    topo = Topology("dumbbell")
    for i in range(4):
        topo.add_node(f"h{i}", HOST)
    topo.add_node("t0", TOR)
    topo.add_node("t1", TOR)
    topo.add_link("h0", "t0", cap, prop)
    topo.add_link("h1", "t0", cap, prop)
    topo.add_link("h2", "t1", cap, prop)
    topo.add_link("h3", "t1", cap, prop)
    topo.add_link("t0", "t1", cap, prop)
    return topo


def _network():
    net = PacketNetwork([_dumbbell()])
    net.add_flow(spec=FlowSpec(
        src="h0", dst="h2", size=FLOW_BYTES,
        paths=[(0, ["h0", "t0", "t1", "h2"])],
    ))
    net.add_flow(spec=FlowSpec(
        src="h1", dst="h3", size=FLOW_BYTES,
        paths=[(0, ["h1", "t0", "t1", "h3"])], at=1e-5,
    ))
    return net


def test_ckpt_overhead(benchmark):
    plain = _network()
    started = time.perf_counter()
    benchmark.pedantic(plain.run, rounds=1, iterations=1)
    plain_wall = time.perf_counter() - started
    want = pickle.dumps(plain.records)

    with tempfile.TemporaryDirectory() as root:
        net = _network()
        started = time.perf_counter()
        saved = run_checkpointed(net, root, every=EVERY)
        checkpointed_wall = time.perf_counter() - started
        assert pickle.dumps(net.records) == want
        assert saved, "workload never crossed a checkpoint interval"
        total_bytes = checkpoints_size_bytes(root)
        n_checkpoints = len(list_checkpoints(root))

        # One save/restore round trip from a mid-run state.
        mid = _network()
        mid.run(until=8e-5)
        started = time.perf_counter()
        directory = save(root, mid)
        save_wall = time.perf_counter() - started
        started = time.perf_counter()
        resumed = restore(directory).network
        restore_wall = time.perf_counter() - started
        resumed.run()
        assert pickle.dumps(resumed.records) == want

    emit_json("BENCH_ckpt", {
        "workload": {
            "topology": "dumbbell",
            "engine": "packet",
            "n_flows": 2,
            "flow_bytes": FLOW_BYTES,
        },
        "checkpoint_every_sim_seconds": EVERY,
        "cpu_count": os.cpu_count(),
        "plain_wall_seconds": round(plain_wall, 4),
        "checkpointed_wall_seconds": round(checkpointed_wall, 4),
        "overhead_ratio": round(checkpointed_wall / plain_wall, 3),
        "n_checkpoints": n_checkpoints,
        "total_checkpoint_bytes": total_bytes,
        "save_wall_seconds": round(save_wall, 5),
        "restore_wall_seconds": round(restore_wall, 5),
    })
