"""Benchmark: DARD-style adaptive end-host routing extension (§3.4)."""

from _util import emit

from repro.exp import adaptive_routing
from repro.exp.common import format_table


def test_adaptive_routing(benchmark):
    result = benchmark.pedantic(adaptive_routing.run, rounds=1, iterations=1)
    emit(
        "adaptive_routing",
        format_table(
            ["variant", "mean FCT (ms)", "speedup vs static"],
            [
                [v, f"{fct * 1e3:.2f}", f"{result.speedup(v):.2f}x"]
                for v, fct in result.mean_fct.items()
            ],
        ),
    )
    # Adaptation never hurts, and MPTCP+KSP remains the best transport.
    assert result.mean_fct["ecmp+adaptive"] <= result.mean_fct["static-ecmp"] * 1.02
    assert result.mean_fct["mptcp-ksp"] <= result.mean_fct["ecmp+adaptive"]
