"""Benchmark: regenerate Figure 13 (trace flow sizes + FCT replay)."""

from _util import emit

from repro.analysis.stats import percentile, summarize
from repro.exp import fig13
from repro.exp.common import (
    PARALLEL_HETEROGENEOUS,
    SERIAL_LOW,
    format_table,
)
from repro.traffic.traces import TRACES


def test_fig13a_flow_size_cdfs(benchmark):
    cdfs = benchmark.pedantic(fig13.flow_size_cdfs, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{TRACES[name].quantile(0.5):,}",
            f"{TRACES[name].quantile(0.99):,}",
            f"{TRACES[name].mean(samples=2001):,.0f}",
        ]
        for name in sorted(cdfs)
    ]
    emit(
        "fig13a",
        format_table(["trace", "median B", "p99 B", "mean B"], rows),
    )
    assert set(cdfs) == set(TRACES)


def test_fig13bc_trace_fcts(benchmark):
    result = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    blocks = []
    for trace, nets in result.fcts.items():
        rows = []
        for label, values in nets.items():
            s = summarize(values)
            rows.append(
                [label, s.count, f"{s.median * 1e6:.1f}",
                 f"{s.p90 * 1e6:.1f}", f"{s.p99 * 1e6:.1f}"]
            )
        blocks.append(
            f"trace: {trace}\n"
            + format_table(
                ["network", "flows", "median us", "p90 us", "p99 us"], rows
            )
        )
    emit("fig13bc", "\n\n".join(blocks))

    for trace, nets in result.fcts.items():
        hetero = percentile(nets[PARALLEL_HETEROGENEOUS], 50)
        serial = percentile(nets[SERIAL_LOW], 50)
        assert hetero <= serial * 1.05
