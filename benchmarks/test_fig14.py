"""Benchmark: regenerate Figure 14 (hop count under link failures)."""

from _util import emit

from repro.exp import fig14
from repro.exp.common import (
    PARALLEL_HETEROGENEOUS,
    PARALLEL_HOMOGENEOUS,
    SERIAL_LOW,
    format_table,
)


def test_fig14(benchmark):
    result = benchmark.pedantic(fig14.run, rounds=1, iterations=1)
    fractions = sorted(next(iter(result.hop_counts.values())))
    text = format_table(
        ["network"] + [f"{f:.0%}" for f in fractions] + ["inflation"],
        [
            [label]
            + [f"{series[f]:.3f}" for f in fractions]
            + [f"+{result.relative_increase(label):.1%}"]
            for label, series in result.hop_counts.items()
        ],
    )
    emit("fig14", text)

    # Paper: serial +22%, homogeneous +3% at 40% failures.
    assert result.relative_increase(SERIAL_LOW) > 0.10
    assert result.relative_increase(PARALLEL_HOMOGENEOUS) < 0.10
    for fraction in fractions:
        assert (
            result.hop_counts[PARALLEL_HETEROGENEOUS][fraction]
            <= result.hop_counts[SERIAL_LOW][fraction]
        )
