"""Benchmark: regenerate Figure 12 (shuffle per-worker completion times)."""

from _util import emit

from repro.analysis.stats import summarize
from repro.exp import fig12
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_HIGH,
    SERIAL_LOW,
    format_table,
)


def test_fig12(benchmark):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    blocks = []
    for stage in fig12.STAGES:
        rows = []
        for label, stages in result.worker_times.items():
            s = summarize(stages[stage])
            rows.append(
                [label, f"{s.median:.3f}", f"{s.mean:.3f}", f"{s.maximum:.3f}"]
            )
        blocks.append(
            f"stage: {stage}\n"
            + format_table(["network", "median s", "mean s", "max s"], rows)
        )
    emit("fig12", "\n\n".join(blocks))

    for stage in fig12.STAGES:
        serial = max(result.worker_times[SERIAL_LOW][stage])
        homo = max(result.worker_times[PARALLEL_HOMOGENEOUS][stage])
        high = max(result.worker_times[SERIAL_HIGH][stage])
        assert homo < serial  # P-Net beats serial low-bandwidth
        assert high <= homo + 1e-9  # ideal network fastest
