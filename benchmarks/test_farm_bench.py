"""Benchmark: run-farm dispatch overhead and reassignment latency.

Two costs matter when a sweep leaves one machine: the *dispatch tax*
(launching workers, streaming assignments over the rendezvous socket,
merging results) and the *recovery bill* (how long a SIGKILLed
worker's trial waits before a survivor picks it up and resumes).
Both land in ``results/BENCH_farm.json``.  Wall-clock numbers vary
with the machine, so the hard assertions are the portable ones:
results byte-identical to a single-host run, exactly one reassignment
in the kill drill, and the victim trial resuming from a checkpoint
instead of recomputing.
"""

import os
import pathlib
import pickle
import signal
import tempfile
import threading
import time

from _util import emit_json

from repro.exp.runner import TrialSpec, run_trials
from repro.farm import local_inventory, run_on_farm

REPO = pathlib.Path(__file__).resolve().parent.parent
WORKER_PYTHONPATH = f"{REPO / 'src'}{os.pathsep}{REPO}"

N_TRIALS = 8
SLOW_KEY = ("demo", 0)


def _specs(n=N_TRIALS, wall_pause=0.0):
    specs = []
    for seed in range(n):
        kwargs = {"seed": seed, "n_flows": 2, "size_mb": 0.3}
        if seed == 0 and wall_pause:
            kwargs = {"seed": 0, "n_flows": 6, "wall_pause": wall_pause}
        specs.append(TrialSpec(
            fn="repro.farm.trial:demo_trial",
            key=("demo", seed),
            kwargs=kwargs,
        ))
    return specs


def _farm_env():
    os.environ["PYTHONPATH"] = WORKER_PYTHONPATH
    os.environ["PNET_CACHE"] = "0"
    os.environ.pop("PNET_FARM_INVENTORY", None)


def test_farm_dispatch_and_recovery(benchmark):
    _farm_env()
    specs = _specs()

    # Baseline: the same grid serially in-process.
    started = time.perf_counter()
    single = benchmark.pedantic(
        run_trials, args=(specs,), rounds=1, iterations=1
    )
    single_wall = time.perf_counter() - started

    # Farm: 2 local workers, no faults.
    started = time.perf_counter()
    farmed, stats = run_on_farm(specs, local_inventory(2))
    farm_wall = time.perf_counter() - started
    assert pickle.dumps({k: farmed[k] for k in single}) == \
        pickle.dumps(single)
    waits = stats.dispatch_wait_seconds

    # Kill drill: SIGKILL the worker holding the slow checkpointing
    # trial; its survivor must resume from a checkpoint.
    drill_specs = _specs(n=4, wall_pause=0.15)
    timers = []

    def on_assign(worker_id, spec, pid, _seen={}):
        if spec.key == SLOW_KEY and not _seen:
            _seen["armed"] = True
            timer = threading.Timer(1.0, os.kill, (pid, signal.SIGKILL))
            timer.daemon = True
            timer.start()
            timers.append(timer)

    with tempfile.TemporaryDirectory() as root:
        started = time.perf_counter()
        killed, kill_stats = run_on_farm(
            drill_specs, local_inventory(2),
            trial_checkpoint_root=pathlib.Path(root) / "trials",
            on_assign=on_assign,
        )
        drill_wall = time.perf_counter() - started
    assert kill_stats.reassigned == 1
    assert kill_stats.resumed_elsewhere == 1
    drill_single = run_trials(drill_specs)
    assert pickle.dumps({k: killed[k] for k in drill_single}) == \
        pickle.dumps(drill_single)

    emit_json("BENCH_farm", {
        "grid": {
            "n_trials": N_TRIALS,
            "trial_fn": "repro.farm.trial:demo_trial",
            "workers": 2,
            "transport": "local",
        },
        "cpu_count": os.cpu_count(),
        "single_host_wall_seconds": round(single_wall, 4),
        "farm_wall_seconds": round(farm_wall, 4),
        "dispatch_overhead_seconds_per_trial": round(
            max(farm_wall - single_wall, 0.0) / N_TRIALS, 4
        ),
        "dispatch_wait_seconds": {
            "mean": round(sum(waits) / len(waits), 5),
            "max": round(max(waits), 5),
        },
        "kill_drill": {
            "n_trials": len(drill_specs),
            "wall_seconds": round(drill_wall, 4),
            "reassigned": kill_stats.reassigned,
            "resumed_elsewhere": kill_stats.resumed_elsewhere,
            "reassign_latency_seconds": [
                round(v, 4) for v in kill_stats.reassign_seconds
            ],
            "worker_losses": kill_stats.worker_losses,
        },
    })
