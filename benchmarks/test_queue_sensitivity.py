"""Benchmark: switch-buffer-depth sensitivity ablation."""

from _util import emit

from repro.exp import queue_sensitivity
from repro.exp.common import (
    PARALLEL_HOMOGENEOUS,
    SERIAL_LOW,
    format_table,
)


def test_queue_sensitivity(benchmark):
    result = benchmark.pedantic(
        queue_sensitivity.run, rounds=1, iterations=1
    )
    rows = [
        [
            label, depth,
            f"{s.median * 1e6:.1f}", f"{s.p99 * 1e6:.1f}",
            result.losses[(label, depth)][0],
            result.losses[(label, depth)][1],
        ]
        for (label, depth), s in sorted(result.stats.items())
    ]
    emit(
        "queue_sensitivity",
        format_table(
            ["network", "buffer pkts", "median us", "p99 us", "drops",
             "retx"],
            rows,
        ),
    )
    # The paper's qualitative result is buffer-depth robust: serial-low
    # is the worst median at every depth.
    for depth in sorted({d for __, d in result.stats}):
        assert (
            result.stats[(SERIAL_LOW, depth)].median
            > result.stats[(PARALLEL_HOMOGENEOUS, depth)].median
        )
