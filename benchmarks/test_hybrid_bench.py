"""Benchmark: hybrid fidelity's accuracy-vs-speed envelope.

Runs the fig9-style permutation workload (spanning MPTCP over a 4-plane
Jellyfish) three ways -- pure packet, pure fluid, and hybrid with a
pinned deterministic sample of flows promoted to packet fidelity -- and
records the envelope in ``results/BENCH_hybrid.json``:

* **speed**: hybrid wall-clock vs pure packet.  With <= 10% of flows
  promoted the co-simulation must be at least 3x faster (in practice
  ~10x: the fluid side is near-free and the packet side only carries
  the promoted flows plus bridge bookkeeping).
* **accuracy**: promoted-flow FCTs vs the same flows in the pure packet
  run.  The deviation must stay inside the packet-vs-fluid differential
  envelope (rel 0.10) already accepted elsewhere in the suite -- i.e.
  promoting a flow buys packet-level fidelity, not a third behaviour.

The promotion sample (p, seed) is pinned so the promoted set -- and
with it the accuracy number -- is reproducible run to run; a repeat
hybrid run must be byte-identical.
"""

import pickle
import time

from _util import emit_json

from repro.api import build_network, run_trial
from repro.core.flowspec import FlowSpec
from repro.core.path_selection import KspMultipathPolicy
from repro.exp.common import (
    JellyfishFamily,
    PARALLEL_HOMOGENEOUS,
    network_for_label,
)
from repro.traffic.patterns import permutation
from repro.units import MB

import random

SWITCHES, DEGREE, HOSTS_PER, N_PLANES = 16, 5, 2, 4
FLOW_BYTES = 1 * MB
#: Pinned Bernoulli sample: realized promoted fraction must stay <= 10%.
PROMOTE_P, PROMOTE_SEED = 0.08, 1

MAX_PROMOTED_FRACTION = 0.10
MAX_PROMOTED_DEVIATION = 0.10  # the suite's packet-vs-fluid rel bound
MIN_SPEEDUP = 3.0


def _pnet():
    family = JellyfishFamily(SWITCHES, DEGREE, HOSTS_PER)
    return network_for_label(family, PARALLEL_HOMOGENEOUS, N_PLANES)


def _workload(pnet):
    pairs = permutation(pnet.hosts, random.Random("hybrid-bench"))
    policy = KspMultipathPolicy(pnet, k=N_PLANES, seed=0)
    return [
        FlowSpec(
            src=src, dst=dst, size=FLOW_BYTES,
            paths=policy.select(src, dst, flow_id),
        )
        for flow_id, (src, dst) in enumerate(pairs)
    ]


def _timed_trial(pnet, specs, kind, **kwargs):
    started = time.perf_counter()
    net = build_network(pnet.planes, kind=kind, **kwargs)
    result = run_trial(net, specs)
    return result, time.perf_counter() - started


def test_hybrid_envelope(benchmark):
    pnet = _pnet()
    specs = _workload(pnet)
    promote = f"sampled:{PROMOTE_P}:{PROMOTE_SEED}"

    packet, packet_wall = benchmark.pedantic(
        _timed_trial, args=(pnet, specs, "packet"), rounds=1, iterations=1
    )
    fluid, fluid_wall = _timed_trial(
        pnet, specs, "fluid", slow_start=True
    )
    hybrid, hybrid_wall = _timed_trial(
        pnet, specs, "hybrid", slow_start=True, promotion=promote
    )

    # The pinned sample is deterministic: a repeat run reproduces the
    # promoted set and every record byte for byte.
    repeat, __ = _timed_trial(
        pnet, specs, "hybrid", slow_start=True, promotion=promote
    )
    assert repeat.fidelity == hybrid.fidelity
    assert [pickle.dumps(r) for r in repeat.records] == [
        pickle.dumps(r) for r in hybrid.records
    ]

    promoted = sorted(
        fid for fid, f in hybrid.fidelity.items() if f == "packet"
    )
    fraction = len(promoted) / len(specs)
    assert 0 < fraction <= MAX_PROMOTED_FRACTION, (
        f"pinned sample promoted {len(promoted)}/{len(specs)} flows"
    )

    packet_fct = {r.flow_id: r.fct for r in packet.records}
    hybrid_fct = {r.flow_id: r.fct for r in hybrid.records}
    deviations = [
        abs(hybrid_fct[fid] - packet_fct[fid]) / packet_fct[fid]
        for fid in promoted
    ]
    assert max(deviations) <= MAX_PROMOTED_DEVIATION, (
        f"promoted-set FCT deviation {max(deviations):.3f} exceeds "
        f"{MAX_PROMOTED_DEVIATION}"
    )

    speedup = packet_wall / hybrid_wall
    assert speedup >= MIN_SPEEDUP, (
        f"hybrid ({hybrid_wall:.2f}s) only {speedup:.1f}x faster than "
        f"pure packet ({packet_wall:.2f}s)"
    )

    emit_json("BENCH_hybrid", {
        "workload": {
            "experiment": "fig9-hybrid",
            "network": PARALLEL_HOMOGENEOUS,
            "switches": SWITCHES,
            "degree": DEGREE,
            "hosts_per": HOSTS_PER,
            "n_planes": N_PLANES,
            "flow_bytes": FLOW_BYTES,
            "n_flows": len(specs),
        },
        "promotion": {
            "policy": promote,
            "promoted_flows": len(promoted),
            "promoted_fraction": round(fraction, 4),
        },
        "wall_seconds": {
            "packet": round(packet_wall, 4),
            "fluid": round(fluid_wall, 4),
            "hybrid": round(hybrid_wall, 4),
        },
        "speedup_vs_packet": round(speedup, 2),
        "promoted_fct_deviation": {
            "mean": sum(deviations) / len(deviations),
            "max": max(deviations),
            "bound": MAX_PROMOTED_DEVIATION,
        },
        "mean_fct_seconds": {
            "packet": sum(packet_fct.values()) / len(packet_fct),
            "fluid": (
                sum(r.fct for r in fluid.records) / len(fluid.records)
            ),
            "hybrid": sum(hybrid_fct.values()) / len(hybrid_fct),
        },
        "bridge_refreshes": hybrid.meta.get("bridge_refreshes"),
    })
