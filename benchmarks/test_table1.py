"""Benchmark: regenerate Table 1 (component counts)."""

from _util import emit

from repro.exp import table1
from repro.exp.common import format_table


def test_table1(benchmark):
    rows = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    text = format_table(
        ["Architecture", "Tiers", "Hops", "Chips", "Boxes", "Links"],
        [list(r.as_row()) for r in rows],
    )
    emit("table1", text)
    assert all(table1.verify_against_paper().values())
